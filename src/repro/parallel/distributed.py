"""Multi-node execution over length-prefixed sockets.

:class:`DistributedBackend` extends the execution stack past one host:
the coordinator listens on a TCP socket, ``repro worker`` agent
processes connect to it, and population batches are sharded across the
fleet.  The batched kernel is pure and shard-invariant, so -- exactly as
for the thread and process backends -- the gathered report is
bit-identical to a serial evaluation no matter how many nodes computed
it, which shards they computed, or how often a shard had to be
re-dispatched after a node died.

Transport
---------
Every message is one *frame*: an 8-byte big-endian length prefix
followed by a pickled payload (NumPy arrays ride along natively).  The
protocol is deliberately tiny:

===========  =========================================================
direction    message
===========  =========================================================
node -> co   ``("hello", version, slot_or_None, name, cpus)``
co -> node   ``("welcome", slot, faults_or_None)``
co -> node   ``("load", table_id, hw, layers, kernel)``
co -> node   ``("eval", task_id, lo, hi, table_id, inputs)``
node -> co   ``("ok" | "fault" | "error", task_id, lo, hi, payload,
node -> co   elapsed_s)``
co -> node   ``("exit",)``
===========  =========================================================

``load`` ships a ``(LayerTable, kernel)`` pair once per (node, table);
a node that reconnects (or is respawned after a kill) starts with an
empty cache and is **re-shipped on demand** -- the same contract the
process backend's respawn path established, surfaced in the ``reships``
counter.  Every reply carries the node-side kernel time (``elapsed_s``,
the evaluate call only -- never queue wait or framing, which would make
a starved node look slow), feeding the coordinator's throughput model
when adaptive shard planning is on.  Pickle is used as the wire format for the same reason the
process backend uses ``multiprocessing`` queues: the links are trusted
coordinator<->worker links inside one deployment, never an open
endpoint for untrusted peers.

Fleet modes
-----------
* **Self-spawned (default):** the backend binds an ephemeral localhost
  port and launches ``nodes`` agent processes itself (the same loop the
  ``repro worker`` CLI runs).  Hermetic -- tests and benches get a real
  socket fleet with zero setup -- and the mode the parity matrix locks.
* **External (``bind=`` / ``$REPRO_BIND``):** the backend binds the
  given address and waits for externally started agents
  (``repro worker --connect HOST:PORT``) to join.  Agents outlive any
  single backend: on coordinator shutdown they loop back to connecting,
  so one warmed fleet serves a whole CI suite of sessions.

Work stealing
-------------
Batches are cut into ``shards_per_node x fleet`` shards kept in a
shared deque; every node is primed with one shard and *pulls* the next
when it acks -- fast nodes simply come back more often, so a
heterogeneous fleet load-balances itself without any rate model.  A
dispatch that lands on a node other than the shard's static round-robin
owner counts as ``stolen_shards``.  ``steal=False`` restores static
round-robin (one shard per node, assigned upfront) -- the baseline the
scaling bench compares against.

Fault handling reuses the process backend's taxonomy wholesale: a dead
node (socket EOF) has its in-flight shards returned to the deque and
re-dispatched bit-identically, bounded by the per-batch ``max_retries``
budget; exhaustion raises
:class:`~repro.parallel.errors.WorkerCrashError`, which is the
degradation ladder's cue to downshift ``distributed -> process``.
:class:`~repro.parallel.faults.FaultPlan` slices travel in the
``welcome`` frame, so seeded chaos runs kill real node processes.
"""

from __future__ import annotations

import os
import pickle
import queue
import socket
import struct
import threading
import time
import weakref
from collections import deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.costmodel.batched import (
    LayerTable,
    evaluate_with_kernel,
    table_token,
)
from repro.costmodel.fused import LRUCache
from repro.costmodel.report import BatchCostReport
from repro.parallel.backend import (
    ExecutionBackend,
    default_max_retries,
    default_task_timeout,
    shard_bounds,
)
from repro.parallel.errors import (
    FaultInjected,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.parallel.faults import FaultPlan
from repro.parallel.shm import INPUT_FIELDS, REPORT_FIELDS

__all__ = [
    "DEFAULT_NODES",
    "DistributedBackend",
    "default_bind",
    "default_nodes",
    "recv_frame",
    "send_frame",
    "worker_agent_main",
]

#: Wire protocol version carried in the hello frame; a mismatch is a
#: deployment error (mixed checkouts), rejected at handshake.
#: Version 2 added the per-shard ``elapsed_s`` timing echo to replies.
PROTOCOL_VERSION = 2

#: Node count when neither ``nodes=`` nor ``$REPRO_NODES`` is given.
#: Two keeps the default fleet cheap (each node is a full process) while
#: still exercising every multi-node code path.
DEFAULT_NODES = 2

_LENGTH = struct.Struct("!Q")
#: Sanity cap on a single frame (1 GiB); a corrupt length prefix should
#: fail loudly, not allocate the host away.
_MAX_FRAME = 1 << 30


def default_nodes() -> int:
    """Fleet size when none is requested: ``$REPRO_NODES`` if set, else
    :data:`DEFAULT_NODES` (capped at the core count)."""
    env = os.environ.get("REPRO_NODES")
    if env is not None:
        nodes = int(env)
        if nodes < 1:
            raise ValueError(f"REPRO_NODES must be >= 1, got {env!r}")
        return nodes
    return max(1, min(DEFAULT_NODES, os.cpu_count() or 1))


def default_bind() -> Optional[str]:
    """The ``$REPRO_BIND`` listen address (``host:port``) selecting the
    external-fleet mode, or ``None`` for the self-spawned default."""
    value = os.environ.get("REPRO_BIND")
    return value or None


def _parse_address(value: str) -> Tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port:
        raise ValueError(
            f"expected HOST:PORT, got {value!r}")
    return host, int(port)


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, message) -> None:
    """Write one length-prefixed pickled frame."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    while count:
        chunk = sock.recv(min(count, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket):
    """Read one length-prefixed pickled frame (raises
    :class:`ConnectionError` on EOF)."""
    (length,) = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))
    if length > _MAX_FRAME:
        raise ConnectionError(f"oversized frame ({length} bytes)")
    return pickle.loads(_recv_exact(sock, length))


# ----------------------------------------------------------------------
# Worker agent (the ``repro worker`` process)
# ----------------------------------------------------------------------
def _connect(host: str, port: int, retry_s: float,
             window_s: Optional[float]) -> Optional[socket.socket]:
    """Dial the coordinator, retrying with a capped backoff.

    ``window_s`` bounds the attempt (``None`` retries forever -- the
    external-agent mode, where the coordinator may not exist *yet*).
    """
    deadline = None if window_s is None else time.monotonic() + window_s
    delay = retry_s
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=10)
            if sock.getsockname() == sock.getpeername():
                # Loopback self-connect: while the coordinator is down,
                # the kernel may pick the *target* port as this dial's
                # ephemeral source port and complete a simultaneous
                # open -- the socket is talking to itself and, worse,
                # holds the port so the coordinator can never bind it.
                sock.close()
                raise OSError("self-connect")
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError:
            if deadline is not None and time.monotonic() >= deadline:
                return None
            time.sleep(delay)
            delay = min(delay * 2, 1.0)


def _serve_coordinator(sock: socket.socket, name: Optional[str],
                       slot: Optional[int]) -> str:
    """Run one coordinator session; returns ``"exit"`` (told to stop)
    or ``"eof"`` (coordinator vanished)."""
    send_frame(sock, ("hello", PROTOCOL_VERSION, slot, name,
                      os.cpu_count() or 1))
    try:
        kind, *rest = recv_frame(sock)
    except (ConnectionError, OSError):
        return "eof"
    if kind != "welcome":
        return "eof"
    _slot, faults = rest
    kill_at = list(faults["kill"]) if faults else []
    raise_at = list(faults["raise"]) if faults else []
    throttle = float(faults.get("throttle", 0.0)) if faults else 0.0
    delay_at: Dict[int, float] = {}
    if faults:
        for batch_idx, seconds in faults["delay"]:
            delay_at[batch_idx] = delay_at.get(batch_idx, 0.0) + seconds
    tables: Dict[int, Tuple[object, LayerTable, str]] = {}
    programs = LRUCache(8)
    while True:
        try:
            message = recv_frame(sock)
        except (ConnectionError, OSError):
            return "eof"
        kind = message[0]
        if kind == "exit":
            return "exit"
        if kind == "load":
            _, table_id, hw, layers, kernel = message
            tables[table_id] = (hw, LayerTable.build(layers), kernel)
            continue
        _, task_id, lo, hi, table_id, inputs = message
        if task_id in kill_at:
            os._exit(1)
        delay = delay_at.pop(task_id, 0.0)
        if throttle:
            delay += throttle * (hi - lo)
        if delay:
            time.sleep(delay)
        elapsed = 0.0
        try:
            if task_id in raise_at:
                raise_at.remove(task_id)
                raise FaultInjected(
                    f"injected fault on node {name or _slot} at batch "
                    f"{task_id}")
            hw, table, kernel = tables[table_id]
            # Time the kernel only: queue wait and (un)framing are
            # coordinator- and transport-side costs; charging them here
            # would make a starved node look slow and starve it further.
            # Injected delays emulate a straggler node, so they ARE
            # charged: the throughput model must see the slow node the
            # adaptive plan routes around.
            start = time.perf_counter()
            report = evaluate_with_kernel(
                kernel, hw, table,
                inputs["layer_idx"], inputs["style_idx"],
                inputs["pes"], inputs["l1_bytes"],
                programs=programs)
            elapsed = time.perf_counter() - start + delay
            reply = ("ok", task_id, lo, hi,
                     {field: getattr(report, field)
                      for field, _ in REPORT_FIELDS}, elapsed)
        except FaultInjected as error:
            reply = ("fault", task_id, lo, hi, repr(error), elapsed)
        except BaseException as error:  # noqa: BLE001 - forwarded verbatim
            import traceback

            reply = ("error", task_id, lo, hi,
                     f"{error!r}\n{traceback.format_exc()}", elapsed)
        try:
            send_frame(sock, reply)
        except (ConnectionError, OSError):
            return "eof"


def worker_agent_main(host: str, port: int, name: Optional[str] = None,
                      slot: Optional[int] = None,
                      reconnect: bool = False,
                      retry_s: float = 0.05,
                      window_s: Optional[float] = 15.0) -> int:
    """The node agent loop behind ``repro worker --connect HOST:PORT``.

    Connects, handshakes, evaluates shards until the coordinator says
    ``exit`` or disappears.  With ``reconnect=True`` (the CLI's mode)
    the agent then loops back to dialing -- retrying forever -- so one
    long-lived agent serves every coordinator that comes and goes on
    that address; self-spawned agents run single-session instead
    (``reconnect=False``), because their coordinator owns them.

    Returns a process exit code (0: clean stop, 1: connect window
    expired with no coordinator).
    """
    while True:
        sock = _connect(host, port, retry_s,
                        None if reconnect else window_s)
        if sock is None:
            return 1
        try:
            outcome = _serve_coordinator(sock, name, slot)
        finally:
            try:
                sock.close()
            except OSError:  # pragma: no cover - best effort
                pass
        if not reconnect:
            return 0
        if outcome == "exit":
            # The coordinator finished a session; go back to listening
            # for the next one (fresh handshake, caches re-shipped).
            continue


def run_worker_agent(connect: str, name: Optional[str] = None) -> int:
    """Supervised entry point for the ``repro worker`` CLI.

    Runs :func:`worker_agent_main` in a child process and respawns it
    when it dies abnormally -- which is exactly what an injected
    ``kill_worker`` fault does (``os._exit(1)``) -- so a chaos run
    against an external fleet self-heals just like the self-spawned
    mode.  Stops cleanly on KeyboardInterrupt.
    """
    import multiprocessing

    host, port = _parse_address(connect)
    context = multiprocessing.get_context("spawn")
    generation = 0
    while True:
        agent_name = name or f"repro-node-ext-{os.getpid()}"
        if generation:
            agent_name = f"{agent_name}-r{generation}"
        process = context.Process(
            target=worker_agent_main,
            args=(host, port, agent_name),
            kwargs={"reconnect": True},
            name=agent_name)
        process.start()
        try:
            process.join()
        except KeyboardInterrupt:
            process.terminate()
            process.join(timeout=5)
            return 0
        if process.exitcode == 0:
            return 0
        generation += 1


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
class _Node:
    """One connected agent: socket, identity, and shipping state."""

    __slots__ = ("slot", "sock", "name", "alive", "shipped", "lock")

    def __init__(self, slot: int, sock: socket.socket,
                 name: Optional[str]) -> None:
        self.slot = slot
        self.sock = sock
        self.name = name or f"node-{slot}"
        self.alive = True
        #: Table ids shipped over *this* connection; a reconnect starts
        #: a fresh node object, so re-ships happen on demand.
        self.shipped: set = set()
        self.lock = threading.Lock()


def _shutdown_fleet(listener_box: List, registry: Dict[int, _Node],
                    agents: Dict[int, object], lock) -> None:
    """Tell every node to exit and reap self-spawned agents (module
    level so a ``weakref.finalize`` can run it after the backend is
    garbage).

    The listener is retired *first*, under the registration lock: a
    reconnecting agent (its ``exit`` handling re-dials immediately)
    could otherwise be accepted mid-shutdown and registered after the
    registry sweep, leaving an orphaned ESTABLISHED socket that holds
    the listen port against the next backend.  With the box emptied
    under the lock, the accept loop's registration check refuses any
    in-flight handshake.
    """
    with lock:
        listener = listener_box[0] if listener_box else None
        if listener_box:
            listener_box[0] = None
        nodes = list(registry.values())
        for node in nodes:
            node.alive = False
        registry.clear()
    if listener is not None:
        try:
            # close() alone leaves a thread blocked in accept() holding
            # the kernel socket -- the LISTEN entry (and the port) would
            # survive until that syscall returns, which it never does
            # once no more agents dial in.  shutdown() aborts it.
            listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            listener.close()
        except OSError:  # pragma: no cover - already closed
            pass
    for node in nodes:
        try:
            send_frame(node.sock, ("exit",))
        except OSError:
            pass
        try:
            node.sock.close()
        except OSError:  # pragma: no cover - already closed
            pass
    for process in agents.values():
        process.join(timeout=5)
    for process in agents.values():
        if process.is_alive():  # pragma: no cover - stuck agent
            process.terminate()
            process.join(timeout=5)
    agents.clear()


class DistributedBackend(ExecutionBackend):
    """Shard batches across a fleet of socket-connected node agents.

    Args:
        nodes: Fleet size (``None``: ``$REPRO_NODES`` or
            :data:`DEFAULT_NODES`).  In self-spawned mode this many
            agents are launched; in external mode it is the break-even
            denominator and the size the startup wait hopes for.
        bind: ``HOST:PORT`` to listen on for externally started
            ``repro worker`` agents (``None``: ``$REPRO_BIND``, else
            self-spawned localhost mode on an ephemeral port).
        min_batch_per_worker: Adaptive-dispatch threshold (see
            :class:`~repro.parallel.backend.ExecutionBackend`); the
            distributed transport has the highest per-batch cost of the
            ladder, so its spec-resolved default is the largest.
        max_retries / backoff_base_s / task_timeout_s / fault_plan /
            kernel / tuner: Exactly the process backend's knobs; the
            tuner (a ``TuningState``) keys node throughput by slot, so
            rates survive respawns and reconnects.
        steal: Pull-based work stealing (default).  ``False`` restores
            static round-robin -- the scaling bench's baseline.
        shards_per_node: Deque depth factor under stealing; more shards
            mean finer-grained stealing at slightly more framing
            overhead.
        connect_timeout_s: How long startup waits for the fleet.

    Attributes:
        stolen_shards: Shards executed off their static owner.
        reships: ``(table, kernel)`` payloads re-shipped to a node that
            already had them on a previous connection (respawn or
            reconnect).
        fleet_nodes: Peak number of simultaneously connected nodes.
    """

    name = "distributed"

    POLL_S = 0.25

    def __init__(self, nodes: Optional[int] = None,
                 bind: Optional[str] = None,
                 min_batch_per_worker: int = 0,
                 max_retries: Optional[int] = None,
                 backoff_base_s: float = 0.05,
                 task_timeout_s: Optional[float] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 kernel: str = None,
                 steal: bool = True,
                 shards_per_node: int = 4,
                 connect_timeout_s: float = 30.0,
                 tuner=None) -> None:
        nodes = default_nodes() if nodes is None else nodes
        super().__init__(nodes, min_batch_per_worker, kernel=kernel,
                         tuner=tuner)
        if shards_per_node < 1:
            raise ValueError("shards_per_node must be >= 1")
        self.nodes = nodes
        if bind is None:
            bind = default_bind()
        self.bind = bind
        self.steal = steal
        self.shards_per_node = shards_per_node
        self.connect_timeout_s = connect_timeout_s
        self.max_retries = (default_max_retries() if max_retries is None
                            else max_retries)
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        self.backoff_base_s = backoff_base_s
        if task_timeout_s is None:
            task_timeout_s = default_task_timeout()
        if task_timeout_s < 0:
            raise ValueError("task_timeout_s must be >= 0 (0 disables)")
        self.task_timeout_s = float(task_timeout_s) or None
        if fault_plan is None:
            fault_plan = FaultPlan.from_env()
        self.fault_plan = fault_plan
        self._kills: Dict[int, List[int]] = {}
        self._delays: Dict[int, List[Tuple[int, float]]] = {}
        self.retries = 0
        self.respawns = 0
        self.timeouts = 0
        self.stolen_shards = 0
        self.reships = 0
        self.fleet_nodes = 0
        self._lock = threading.Lock()
        self._listener_box: List = [None]
        self._registry: Dict[int, _Node] = {}
        self._agents: Dict[int, object] = {}
        self._generations: Dict[int, int] = {}
        #: Table ids ever shipped per slot across connections -- what
        #: distinguishes a *re*-ship from a first ship.
        self._ever_shipped: Dict[int, set] = {}
        self._events: "queue.Queue" = queue.Queue()
        self._tables: Dict[int, LayerTable] = {}
        self._next_task = 0
        self._accept_thread: Optional[threading.Thread] = None
        self._finalizer: Optional[weakref.finalize] = None

    # ------------------------------------------------------------------
    @property
    def alive_workers(self) -> int:
        if self._agents:
            return sum(1 for process in self._agents.values()
                       if process.is_alive())
        return len(self._registry)

    @property
    def connected_nodes(self) -> int:
        """Nodes currently in the registry."""
        return len(self._registry)

    def _fault_wire(self, slot: int) -> Optional[dict]:
        if self.fault_plan is None:
            return None
        with self._lock:
            if slot not in self._kills:
                self._kills[slot] = self.fault_plan.kills_for(slot)
                self._delays[slot] = self.fault_plan.delays_for(slot)
            return {
                "kill": list(self._kills[slot]),
                "raise": self.fault_plan.raises_for(slot),
                "delay": [[batch, seconds] for batch, seconds
                          in self._delays[slot]],
                # Persistent straggler emulation: never pruned, a
                # respawned node stays slow.
                "throttle": self.fault_plan.throttle_for(slot),
            }

    # ------------------------------------------------------------------
    def _accept_loop(self, listener: socket.socket) -> None:
        """Registry feeder: accept agents, handshake, start a reader."""
        while True:
            try:
                conn, _addr = listener.accept()
            except OSError:
                return  # listener closed: shutdown
            try:
                conn.settimeout(10)
                hello = recv_frame(conn)
                kind, version, slot, name, _cpus = hello
                if kind != "hello" or version != PROTOCOL_VERSION:
                    conn.close()
                    continue
                with self._lock:
                    if slot is None or slot in self._registry:
                        slot = 0
                        while slot in self._registry:
                            slot += 1
                faults = self._fault_wire(slot)
                send_frame(conn, ("welcome", slot, faults))
                conn.settimeout(None)
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                # Accepted sockets share the listen port; without
                # SO_REUSEADDR their FIN_WAIT remnants block a later
                # backend from rebinding a fixed $REPRO_BIND address.
                conn.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            except (ConnectionError, OSError, ValueError):
                try:
                    conn.close()
                except OSError:
                    pass
                continue
            node = _Node(slot, conn, name)
            with self._lock:
                if self._listener_box[0] is not listener:
                    # Shutdown retired this listener between accept and
                    # registration (a reconnecting agent re-dials the
                    # instant it is told to exit).  Registering now
                    # would orphan the socket past the registry sweep.
                    conn.close()
                    return
                self._registry[slot] = node
                self.fleet_nodes = max(self.fleet_nodes,
                                       len(self._registry))
            reader = threading.Thread(
                target=self._reader_loop, args=(node,),
                name=f"repro-node-reader-{slot}", daemon=True)
            reader.start()
            self._events.put(("join", node))

    def _reader_loop(self, node: _Node) -> None:
        while True:
            try:
                message = recv_frame(node.sock)
            except (ConnectionError, OSError):
                self._events.put(("gone", node))
                return
            self._events.put(("msg", node, message))

    # ------------------------------------------------------------------
    def _spawn_agent(self, slot: int) -> None:
        import multiprocessing

        listener = self._listener_box[0]
        host, port = listener.getsockname()[:2]
        generation = self._generations.get(slot, 0)
        suffix = f"-r{generation}" if generation else ""
        # The spawn start method costs an interpreter start per agent
        # but inherits no descriptors -- a forked agent would keep the
        # coordinator's listener and peer sockets alive past shutdown.
        context = multiprocessing.get_context("spawn")
        process = context.Process(
            target=worker_agent_main,
            args=(host, port),
            kwargs={"name": f"repro-node-{slot}{suffix}", "slot": slot,
                    "reconnect": False},
            daemon=True,
            name=f"repro-node-{slot}{suffix}")
        process.start()
        self._agents[slot] = process

    def _ensure_started(self) -> None:
        if self._listener_box[0] is not None:
            return
        if self.bind is not None:
            host, port = _parse_address(self.bind)
        else:
            host, port = "127.0.0.1", 0
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(64)
        self._listener_box[0] = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, args=(listener,),
            name="repro-node-accept", daemon=True)
        self._accept_thread.start()
        if self.bind is None:
            for slot in range(self.nodes):
                self._spawn_agent(slot)
        self._finalizer = weakref.finalize(
            self, _shutdown_fleet, self._listener_box, self._registry,
            self._agents, self._lock)
        # Startup barrier: self-spawned fleets wait for every agent
        # (deterministic tests); external fleets for the first joiner
        # (the rest can trickle in mid-batch -- stealing absorbs them).
        want = self.nodes if self.bind is None else 1
        deadline = time.monotonic() + self.connect_timeout_s
        while len(self._registry) < want:
            if time.monotonic() >= deadline:
                have = len(self._registry)
                self.shutdown()
                raise WorkerCrashError(
                    f"distributed fleet never came up: {have}/{want} "
                    f"node(s) connected within {self.connect_timeout_s}s")
            time.sleep(0.01)

    # ------------------------------------------------------------------
    def _ship_table(self, node: _Node, hw, table: LayerTable) -> int:
        table_id = table_token(table)
        self._tables[table_id] = table
        if table_id not in node.shipped:
            ever = self._ever_shipped.setdefault(node.slot, set())
            if table_id in ever:
                self.reships += 1
            else:
                ever.add(table_id)
            send_frame(node.sock,
                       ("load", table_id, hw, table.layers, self.kernel))
            node.shipped.add(table_id)
        return table_id

    def _dispatch(self, node: _Node, task_id: int, shard: int,
                  lo: int, hi: int, hw, table, inputs,
                  static_owner: List[int],
                  pending: Dict[Tuple[int, int], int]) -> bool:
        """Send one shard to one node; False if the node is dead (the
        caller re-queues the shard and the reader's ``gone`` event
        drives recovery)."""
        if not node.alive:
            return False
        try:
            with node.lock:
                table_id = self._ship_table(node, hw, table)
                send_frame(node.sock, (
                    "eval", task_id, lo, hi, table_id,
                    {name: array[lo:hi] for name, array in inputs.items()}))
        except (ConnectionError, OSError):
            return False
        pending[(lo, hi)] = node.slot
        if static_owner[shard] != node.slot:
            self.stolen_shards += 1
        return True

    def evaluate(self, hw, table, layer_idx, style_idx, pes,
                 l1_bytes) -> BatchCostReport:
        if self._route_inline(layer_idx.size):
            self.inline_batches += 1
            start = time.perf_counter()
            report = self._run_kernel(hw, table, layer_idx, style_idx,
                                      pes, l1_bytes)
            self._observe_route(layer_idx.size, True,
                                time.perf_counter() - start)
            return report
        self.sharded_batches += 1
        self._ensure_started()
        task_id = self._next_task
        self._next_task += 1
        inputs = {"layer_idx": layer_idx, "style_idx": style_idx,
                  "pes": pes, "l1_bytes": l1_bytes}
        for name, dtype in INPUT_FIELDS:
            inputs[name] = np.ascontiguousarray(inputs[name], dtype=dtype)
        outputs = {name: np.empty(layer_idx.size, dtype=dtype)
                   for name, dtype in REPORT_FIELDS}
        start = time.perf_counter()
        self._run_task(task_id, hw, table, inputs, outputs,
                       int(layer_idx.size))
        self._observe_route(layer_idx.size, False,
                            time.perf_counter() - start)
        return BatchCostReport(**outputs)

    # ------------------------------------------------------------------
    def _live_nodes(self) -> List[_Node]:
        with self._lock:
            return [self._registry[slot]
                    for slot in sorted(self._registry)]

    def _await_fleet(self, task_id: int) -> List[_Node]:
        """The current fleet, waiting out a fully-dead registry (a
        respawn or external reconnect lands via the accept thread)."""
        live = self._live_nodes()
        if live:
            return live
        deadline = time.monotonic() + self.connect_timeout_s
        while not live:
            if time.monotonic() >= deadline:
                self.shutdown()
                raise WorkerCrashError(
                    f"distributed batch {task_id}: no nodes connected "
                    f"within {self.connect_timeout_s}s")
            time.sleep(0.01)
            live = self._live_nodes()
        return live

    def _run_task(self, task_id: int, hw, table, inputs, outputs,
                  batch: int) -> None:
        """Dispatch one batch's shards over the fleet and supervise
        them to completion -- the socket twin of
        ``ProcessBackend._run_task``, with the static per-worker
        assignment replaced by a shared shard deque that idle nodes
        pull from."""
        live = self._await_fleet(task_id)
        keys = [node.slot for node in live]
        chunks = self.shards_per_node if self.steal else 1
        if self.tuner is not None and self.tuner.plan_shards:
            # Adaptive plan: shard spans sized to each node's measured
            # rows/sec (uniform round-robin until rates exist).  Under
            # stealing the plan only sets the *initial* spans -- the
            # deque still rebalances tails.
            bounds, static_owner = self.tuner.plan(
                batch, self.name, keys, chunks)
        else:
            # The static assignment both modes are measured against:
            # shard i belongs to the i-th live node, round-robin.
            bounds = shard_bounds(batch, len(live) * chunks)
            static_owner = [keys[i % len(keys)]
                            for i in range(len(bounds))]
        todo = deque(range(len(bounds)))
        pending: Dict[Tuple[int, int], int] = {}
        shard_of: Dict[Tuple[int, int], int] = {
            bounds[i]: i for i in range(len(bounds))}
        attempts = 0
        failures: List[Tuple[int, str]] = []

        def feed(node: _Node, limit: Optional[int] = None) -> int:
            """Give ``node`` work from the deque (its pull)."""
            fed = 0
            while todo and (limit is None or fed < limit):
                shard = todo.popleft()
                lo, hi = bounds[shard]
                if self._dispatch(node, task_id, shard, lo, hi, hw,
                                  table, inputs, static_owner, pending):
                    fed += 1
                else:
                    todo.appendleft(shard)
                    break
            return fed

        def refill() -> None:
            """Hand deque work to live nodes after a fleet change (a
            join, or shards reclaimed from a dead node)."""
            if self.steal:
                busy = set(pending.values())
                for node in self._live_nodes():
                    if not todo:
                        return
                    if node.slot not in busy:
                        feed(node, limit=1)
                return
            # Static mode recovery: spread reclaimed shards round-robin
            # over whoever is still alive (the static assignment is per
            # batch, not sacred across failures).
            while todo:
                progressed = 0
                for node in self._live_nodes():
                    if not todo:
                        return
                    progressed += feed(node, limit=1)
                if not progressed:
                    return  # nobody alive took work; await a join

        if self.steal:
            for node in live:
                feed(node, limit=1)
        else:
            # Static mode: every shard goes straight to its owner.  A
            # shard whose owner died mid-prime stays in the deque; the
            # owner's ``gone`` event redistributes it below.
            by_slot = {node.slot: node for node in live}
            for _ in range(len(todo)):
                shard = todo.popleft()
                lo, hi = bounds[shard]
                if not self._dispatch(by_slot[static_owner[shard]],
                                      task_id, shard, lo, hi, hw, table,
                                      inputs, static_owner, pending):
                    todo.append(shard)

        def lose_node(node: _Node) -> None:
            """Idempotent node-loss handling: expel, reclaim its
            in-flight shards, prune consumed faults, respawn when
            self-spawned."""
            if not node.alive:
                return
            node.alive = False
            with self._lock:
                if self._registry.get(node.slot) is node:
                    del self._registry[node.slot]
                kills = self._kills.get(node.slot)
                if kills and task_id in kills:
                    kills.remove(task_id)
                delays = self._delays.get(node.slot)
                if delays:
                    for entry in delays:
                        if entry[0] == task_id:
                            delays.remove(entry)
                            break
            try:
                node.sock.close()
            except OSError:  # pragma: no cover - already closed
                pass
            for (lo, hi), slot in list(pending.items()):
                if slot == node.slot:
                    del pending[(lo, hi)]
                    todo.appendleft(shard_of[(lo, hi)])
            if self._agents and node.slot in self._agents:
                process = self._agents[node.slot]
                if process.is_alive():
                    process.terminate()
                process.join(timeout=5)
                self._generations[node.slot] = (
                    self._generations.get(node.slot, 0) + 1)
                self._spawn_agent(node.slot)
                self.respawns += 1

        timeout = self.task_timeout_s
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while pending or todo:
            if todo and not pending:
                # Nothing in flight to ack: drive dispatch ourselves
                # (all feeds failed against dying nodes, or the fleet
                # emptied and is coming back).
                if not self._live_nodes():
                    self._await_fleet(task_id)
                refill()
            wait = self.POLL_S
            if deadline is not None:
                wait = min(wait, max(0.0, deadline - time.monotonic()))
            event = None
            try:
                event = self._events.get(timeout=wait)
            except queue.Empty:
                pass
            if event is not None:
                kind = event[0]
                if kind == "join":
                    refill()
                    continue
                node = event[1]
                if kind == "gone":
                    if not node.alive:
                        continue  # already expelled (send failure)
                    name = node.name
                    had_work = node.slot in set(pending.values())
                    lose_node(node)
                    if had_work:
                        # Only a node carrying in-flight shards costs
                        # the batch a recovery; an idle death is just a
                        # (respawned) fleet change.
                        attempts = self._account_recovery(
                            task_id, attempts, "crash",
                            f"node died mid-batch: {name}",
                            worker_names=[name])
                    refill()
                    if deadline is not None:
                        deadline = time.monotonic() + timeout
                    continue
                _, _, message = event
                status, done_id, lo, hi, payload, elapsed = message
                if done_id != task_id or (lo, hi) not in pending:
                    continue  # stale ack from a recovered attempt
                if status == "ok":
                    del pending[(lo, hi)]
                    for field, _ in REPORT_FIELDS:
                        outputs[field][lo:hi] = payload[field]
                    self._observe_shard(node.slot, hi - lo, elapsed)
                    if self.steal:
                        feed(node, limit=1)
                elif status == "fault":
                    attempts = self._account_recovery(
                        task_id, attempts, "fault",
                        f"injected fault on node {node.name}")
                    shard = shard_of[(lo, hi)]
                    del pending[(lo, hi)]
                    if not self._dispatch(node, task_id, shard, lo, hi,
                                          hw, table, inputs,
                                          static_owner, pending):
                        todo.appendleft(shard)
                else:
                    # Deterministic kernel bug: never retried (see the
                    # process backend); drain the rest, then surface.
                    failures.append((node.slot, payload))
                    del pending[(lo, hi)]
                    if self.steal:
                        feed(node, limit=1)
                continue
            # Quiet poll window: check the deadline; socket EOF (not a
            # liveness poll) is what reports dead nodes here.
            if deadline is not None and time.monotonic() >= deadline:
                hung = {slot for slot in pending.values()}
                self.timeouts += 1
                attempts = self._account_recovery(
                    task_id, attempts, "timeout",
                    f"distributed batch {task_id} missed its {timeout}s "
                    f"deadline ({len(pending)} shard(s) outstanding)")
                for node in self._live_nodes():
                    if node.slot in hung:
                        lose_node(node)
                refill()
                deadline = time.monotonic() + timeout
        if failures:
            slot, detail = failures[0]
            raise RuntimeError(
                f"distributed node {slot} failed:\n{detail}")

    def _account_recovery(self, task_id: int, attempts: int, kind: str,
                          reason: str, worker_names=()) -> int:
        """Charge one recovery against the batch budget (the process
        backend's accounting, verbatim semantics)."""
        attempts += 1
        self.retries += 1
        if attempts > self.max_retries:
            self.shutdown()
            message = (f"distributed batch {task_id}: {reason}; retry "
                       f"budget ({self.max_retries}) exhausted")
            if kind == "timeout":
                raise TaskTimeoutError(message,
                                       timeout_s=self.task_timeout_s or 0.0)
            if kind == "fault":
                raise FaultInjected(message)
            raise WorkerCrashError(message, worker_names=worker_names)
        if self.backoff_base_s:
            time.sleep(self.backoff_base_s * 2 ** (attempts - 1))
        return attempts

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        if self._listener_box[0] is None and not self._registry:
            return
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        _shutdown_fleet(self._listener_box, self._registry, self._agents,
                        self._lock)
        if self._accept_thread is not None:
            # The listener's shutdown() wakes the blocked accept();
            # joining makes the port release synchronous, so a caller
            # can rebind the address the moment shutdown() returns.
            self._accept_thread.join(timeout=5)
        while True:
            try:
                self._events.get_nowait()
            except queue.Empty:
                break
        self._generations = {}
        self._ever_shipped = {}
        self._tables = {}
        self._accept_thread = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "external" if self.bind else "self-spawned"
        return (f"DistributedBackend(nodes={self.nodes}, mode={mode}, "
                f"steal={self.steal})")
