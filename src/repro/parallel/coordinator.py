"""Session-level ownership of a parallel execution backend.

:class:`ParallelCoordinator` is the :class:`~repro.search.callbacks
.SearchObserver` that plugs the execution backends into the unified
session API (the seam the ROADMAP planned for).  Its whole job is
lifecycle:

* ``on_start`` -- build the backend (workers spawn lazily on the first
  batch), wrap it in the degradation ladder
  (:class:`~repro.parallel.backend.ResilientBackend`, unless
  ``degrade=False``), and install it on the session's cost model, so
  every population-level consumer of the run -- GA generations, the
  baseline optimizers, batched REINFORCE epochs -- shards through it
  without knowing it exists.
* ``on_teardown`` -- snapshot the fault-tolerance counters, uninstall
  the backend, and shut the workers down.  The session fires this hook
  on *every* exit path (budget exhausted, observer early stop, method
  exception), which is what makes "no orphan worker processes" a
  guarantee rather than a habit.
* ``on_finish`` -- surface the snapshot (``retries`` / ``respawns`` /
  ``timeouts`` / ``pool_failures`` / ``degraded_to``) into
  ``SessionResult.provenance["execution"]``, so a run's resilience story
  travels with its result file.

When the ladder downshifts mid-session the coordinator emits a
``RuntimeWarning`` and a structured ``on_warning("backend-degraded",
...)`` through the session's observer fan-out -- the run completes on
the lower rung instead of dying.

Sessions create one automatically when ``SearchSpec.executor`` resolves
to a parallel backend; pass your own (e.g. with ``keep_alive=True``) to
reuse one worker pool across a whole comparison grid::

    with ParallelCoordinator("process", workers=4, keep_alive=True) as pool:
        for spec in grid:
            SearchSession(spec, cost_model=shared).run(callbacks=[pool])

Concurrent sharing -- leases
----------------------------

One coordinator instance observes one run at a time (its ``on_start`` /
``on_teardown`` pair is stateful).  To multiplex *concurrent* sessions
over one pool -- the search-service pattern -- give each session its own
:meth:`lease`::

    pool = ParallelCoordinator("process", workers=4, keep_alive=True)
    # in N scheduler threads, concurrently:
    SearchSession(spec).run(callbacks=[pool.lease()])

Every lease installs the same backend, wrapped so each *batch
evaluation* serializes on the pool's lock: the worker fleet computes one
batch at a time (its task queues and counters are single-dispatcher
state) while the sessions around it interleave freely.  The batched
kernel is pure and per-batch atomic, so interleaved sessions are
bit-identical to running them back to back -- locked by
``tests/test_parallel_lifecycle.py``.
"""

from __future__ import annotations

import threading
import warnings
from typing import Dict, List, Optional

from repro.parallel.backend import (
    ExecutionBackend,
    ResilientBackend,
    make_backend,
)
from repro.parallel.faults import FaultPlan
from repro.parallel.tuning import TuningState
from repro.search.callbacks import SearchObserver

__all__ = ["ParallelCoordinator", "PoolLease"]


class _SerializedBackend:
    """Facade making one shared backend safe for concurrent sessions.

    The underlying backends are single-dispatcher (``_next_task``
    counters, per-worker queues, one result queue), so concurrent
    ``evaluate`` calls must not interleave; this wrapper serializes them
    on the owning coordinator's lock.  Everything else (counters,
    ``alive_workers``, ``name``) forwards to the real backend.  Batch
    evaluations are atomic and the kernel is pure, so serialization
    changes wall-clock interleaving only, never results.
    """

    def __init__(self, inner: ExecutionBackend,
                 lock: threading.Lock) -> None:
        self.inner = inner
        self._evaluate_lock = lock

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def evaluate(self, hw, table, layer_idx, style_idx, pes, l1_bytes):
        with self._evaluate_lock:
            return self.inner.evaluate(hw, table, layer_idx, style_idx,
                                       pes, l1_bytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"_SerializedBackend({self.inner!r})"


class PoolLease(SearchObserver):
    """One session's lease on a shared :class:`ParallelCoordinator` pool.

    A lease is a per-run observer: it installs the coordinator's
    (serialized) backend on its session's cost model at ``on_start``,
    uninstalls it at ``on_teardown``, and stamps the pool's
    fault-tolerance counters into the result's provenance at
    ``on_finish`` -- exactly what the coordinator does as a direct
    observer, minus the per-run instance state that makes the
    coordinator itself single-run.  Create one per concurrent session
    via :meth:`ParallelCoordinator.lease`.
    """

    def __init__(self, coordinator: "ParallelCoordinator") -> None:
        super().__init__()
        self.coordinator = coordinator
        self._cost_model = None

    def on_start(self, session) -> None:
        self._cost_model = session.cost_model
        self.coordinator._attach(session, session.cost_model)

    def on_teardown(self) -> None:
        if self._cost_model is not None:
            self.coordinator._detach(self._cost_model)
            self._cost_model = None

    def on_finish(self, result) -> None:
        stats = self.coordinator.execution_stats()
        if stats is not None:
            result.provenance["execution"] = dict(stats)
        if self.coordinator.tuner is not None:
            result.provenance["tuning"] = self.coordinator.tuner.snapshot()


class ParallelCoordinator(SearchObserver):
    """Observer that owns worker lifecycle for one or many sessions.

    Args:
        executor: "serial" | "thread" | "process" | "chaos" |
            "distributed".
        workers: Worker count (``None``: ``$REPRO_WORKERS`` or the core
            count).
        nodes: Node-fleet size for the "distributed" executor
            (``None``: ``$REPRO_NODES`` or the built-in default); it
            takes the place of ``workers`` there, since each node is
            the unit of sharding.  Ignored by other executors.
        keep_alive: Keep workers running after ``on_teardown`` so the
            next run reuses them; call :meth:`close` (or use the
            coordinator as a context manager) when done.  Fault-tolerance
            counters accumulate across the reusing sessions.
        min_batch_per_worker: Adaptive-dispatch threshold forwarded to
            the backend (0, the default, always shards; sessions built
            from a :class:`~repro.search.spec.SearchSpec` pass the
            spec-resolved break-even so small batches skip the IPC).
        task_timeout_s: Per-batch deadline forwarded to the process
            backend (``None``: ``$REPRO_TASK_TIMEOUT`` or disabled; 0
            explicitly disables).
        max_retries: Per-batch recovery budget (``None``:
            ``$REPRO_MAX_RETRIES`` or the default).
        fault_plan: Deterministic fault-injection script (``None``:
            ``$REPRO_FAULTS``, or none).
        degrade: Wrap the backend in the process -> thread -> serial
            degradation ladder (on by default; turn off to let retry
            exhaustion raise instead -- what the parity tests do).
        kernel: Cost-model compute kernel forwarded to the backend --
            and by it to every worker (``None``: ``$REPRO_KERNEL`` or
            "batched"; see :mod:`repro.costmodel.fused`).
        autotune: Adaptive shard planning -- shard spans sized to each
            worker/node's measured rows/sec (EWMA over shard timing
            echoes).  Scheduling only; results stay bit-identical (the
            kernel is shard-invariant).  See
            :mod:`repro.parallel.tuning`.
        auto_dispatch: Runtime break-even calibration -- the first
            batches probe inline vs sharded and freeze a measured
            per-transport crossover in place of the static
            ``TRANSPORT_MIN_BATCH`` threshold.
    """

    def __init__(self, executor: str = "process",
                 workers: Optional[int] = None,
                 nodes: Optional[int] = None,
                 keep_alive: bool = False,
                 min_batch_per_worker: int = 0,
                 task_timeout_s: Optional[float] = None,
                 max_retries: Optional[int] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 degrade: bool = True,
                 kernel: Optional[str] = None,
                 autotune: bool = False,
                 auto_dispatch: bool = False) -> None:
        super().__init__()
        self.executor = executor
        self.workers = workers
        self.nodes = nodes
        self.keep_alive = keep_alive
        self.min_batch_per_worker = min_batch_per_worker
        self.task_timeout_s = task_timeout_s
        self.max_retries = max_retries
        self.fault_plan = fault_plan
        self.degrade = degrade
        self.kernel = kernel
        #: One tuning state for the coordinator's whole lifetime: rates
        #: are keyed (transport, slot), so they survive ladder
        #: downshifts, worker respawns, and keep-alive session reuse.
        self.tuner: Optional[TuningState] = (
            TuningState(plan_shards=autotune, auto_dispatch=auto_dispatch)
            if (autotune or auto_dispatch) else None)
        self.backend: Optional[ExecutionBackend] = None
        #: Counter snapshot from the most recent teardown (what
        #: ``on_finish`` writes into provenance after the pool is gone).
        self.last_stats: Optional[Dict[str, object]] = None
        self._cost_model = None
        self._session = None
        # Pool-sharing state: _lock guards build/install/close
        # bookkeeping, _evaluate_lock serializes shared-pool batches.
        self._lock = threading.RLock()
        self._evaluate_lock = threading.Lock()
        self._serialized: Optional[_SerializedBackend] = None
        self._active_sessions: List = []

    # ------------------------------------------------------------------
    def lease(self) -> PoolLease:
        """A fresh per-session observer sharing this coordinator's pool.

        Concurrent sessions must not share the coordinator *instance*
        (its on_start/on_teardown pair is per-run state); they share the
        pool through one lease each.  Batch evaluations from all lessees
        serialize on the pool lock, which keeps the single-dispatcher
        backends safe and results bit-identical to serial execution.
        """
        return PoolLease(self)

    def _ensure_backend(self) -> _SerializedBackend:
        with self._lock:
            if self.backend is None:
                # The distributed backend shards per *node*; its fleet
                # size rides make_backend's workers parameter.
                width = (self.nodes if self.executor == "distributed"
                         else self.workers)
                inner = make_backend(
                    self.executor, width, self.min_batch_per_worker,
                    task_timeout_s=self.task_timeout_s,
                    max_retries=self.max_retries,
                    fault_plan=self.fault_plan,
                    kernel=self.kernel,
                    tuner=self.tuner)
                if self.degrade and inner.name != "serial":
                    self.backend = ResilientBackend(
                        inner, on_degrade=self._on_degrade)
                else:
                    self.backend = inner
                self._serialized = _SerializedBackend(
                    self.backend, self._evaluate_lock)
            return self._serialized

    def _attach(self, session, cost_model) -> None:
        """Install the (serialized) backend on one session's cost model."""
        with self._lock:
            backend = self._ensure_backend()
            self._active_sessions.append(session)
            cost_model.set_executor(backend)

    def _detach(self, cost_model, session=None) -> None:
        """Uninstall from one cost model; close the pool when the last
        lease ends unless kept alive."""
        with self._lock:
            self.last_stats = self.execution_stats()
            cost_model.set_executor(None)
            for index, active in enumerate(self._active_sessions):
                if session is None or active is session:
                    del self._active_sessions[index]
                    break
            if not self.keep_alive and not self._active_sessions:
                self.close()

    # ------------------------------------------------------------------
    def on_start(self, session) -> None:
        """Install the backend on the session's shared cost model."""
        self._session = session
        self._cost_model = session.cost_model
        self._attach(session, session.cost_model)

    def _on_degrade(self, error, from_name: str, to_name: str) -> None:
        """Bridge a ladder downshift to the warning surfaces: a Python
        ``RuntimeWarning`` (always) and the structured observer hook of
        every session currently on the pool."""
        detail = {
            "from": from_name,
            "to": to_name,
            "error": type(error).__name__,
            "message": str(error),
        }
        warnings.warn(
            f"execution backend degraded {from_name} -> {to_name} "
            f"after {type(error).__name__}: {error}",
            RuntimeWarning, stacklevel=2)
        with self._lock:
            sessions = list(self._active_sessions)
        for session in sessions:
            if hasattr(session, "_notify_warning"):
                session._notify_warning("backend-degraded", detail)

    def execution_stats(self) -> Optional[Dict[str, object]]:
        """Fault-tolerance counters for the live backend (or the
        snapshot from the last teardown once the pool is gone)."""
        backend = self.backend
        if backend is None:
            return self.last_stats
        if isinstance(backend, ResilientBackend):
            return backend.stats()
        return {
            "executor": backend.name,
            "retries": getattr(backend, "retries", 0),
            "respawns": getattr(backend, "respawns", 0),
            "timeouts": getattr(backend, "timeouts", 0),
            "inline_batches": backend.inline_batches,
            "sharded_batches": backend.sharded_batches,
            "stolen_shards": getattr(backend, "stolen_shards", 0),
            "reships": getattr(backend, "reships", 0),
            "nodes": getattr(backend, "fleet_nodes", 0),
            "pool_failures": 0,
            "degraded_to": None,
        }

    def on_teardown(self) -> None:
        """Snapshot counters, uninstall from the cost model, and stop
        workers unless kept alive.

        Fired by the session on every exit path, including early stops
        and method exceptions.
        """
        if self._cost_model is not None:
            self._detach(self._cost_model, self._session)
            self._cost_model = None
        else:
            self.last_stats = self.execution_stats()
            if not self.keep_alive and not self._active_sessions:
                self.close()
        self._session = None

    def on_finish(self, result) -> None:
        """Record the run's fault-tolerance story in its provenance."""
        stats = self.execution_stats()
        if stats is not None:
            result.provenance["execution"] = dict(stats)
        if self.tuner is not None:
            result.provenance["tuning"] = self.tuner.snapshot()

    def close(self) -> None:
        """Shut the workers down now (idempotent)."""
        with self._lock:
            if self.backend is not None:
                self.backend.shutdown()
                self.backend = None
                self._serialized = None

    @property
    def alive_workers(self) -> int:
        """Live worker processes (0 when shut down or in-process)."""
        return 0 if self.backend is None else self.backend.alive_workers

    def __enter__(self) -> "ParallelCoordinator":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
