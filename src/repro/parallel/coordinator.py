"""Session-level ownership of a parallel execution backend.

:class:`ParallelCoordinator` is the :class:`~repro.search.callbacks
.SearchObserver` that plugs the execution backends into the unified
session API (the seam the ROADMAP planned for).  Its whole job is
lifecycle:

* ``on_start`` -- build the backend (workers spawn lazily on the first
  batch) and install it on the session's cost model, so every
  population-level consumer of the run -- GA generations, the baseline
  optimizers, batched REINFORCE epochs -- shards through it without
  knowing it exists.
* ``on_teardown`` -- uninstall the backend and shut the workers down.
  The session fires this hook on *every* exit path (budget exhausted,
  observer early stop, method exception), which is what makes "no orphan
  worker processes" a guarantee rather than a habit.

Sessions create one automatically when ``SearchSpec.executor`` resolves
to a parallel backend; pass your own (e.g. with ``keep_alive=True``) to
reuse one worker pool across a whole comparison grid::

    with ParallelCoordinator("process", workers=4, keep_alive=True) as pool:
        for spec in grid:
            SearchSession(spec, cost_model=shared).run(callbacks=[pool])
"""

from __future__ import annotations

from typing import Optional

from repro.parallel.backend import ExecutionBackend, make_backend
from repro.search.callbacks import SearchObserver

__all__ = ["ParallelCoordinator"]


class ParallelCoordinator(SearchObserver):
    """Observer that owns worker lifecycle for one or many sessions.

    Args:
        executor: "serial" | "thread" | "process".
        workers: Worker count (``None``: ``$REPRO_WORKERS`` or the core
            count).
        keep_alive: Keep workers running after ``on_teardown`` so the
            next run reuses them; call :meth:`close` (or use the
            coordinator as a context manager) when done.
        min_batch_per_worker: Adaptive-dispatch threshold forwarded to
            the backend (0, the default, always shards; sessions built
            from a :class:`~repro.search.spec.SearchSpec` pass the
            spec-resolved break-even so small batches skip the IPC).
    """

    def __init__(self, executor: str = "process",
                 workers: Optional[int] = None,
                 keep_alive: bool = False,
                 min_batch_per_worker: int = 0) -> None:
        super().__init__()
        self.executor = executor
        self.workers = workers
        self.keep_alive = keep_alive
        self.min_batch_per_worker = min_batch_per_worker
        self.backend: Optional[ExecutionBackend] = None
        self._cost_model = None

    # ------------------------------------------------------------------
    def on_start(self, session) -> None:
        """Install the backend on the session's shared cost model."""
        if self.backend is None:
            self.backend = make_backend(self.executor, self.workers,
                                        self.min_batch_per_worker)
        self._cost_model = session.cost_model
        self._cost_model.set_executor(self.backend)

    def on_teardown(self) -> None:
        """Uninstall from the cost model; stop workers unless kept alive.

        Fired by the session on every exit path, including early stops
        and method exceptions.
        """
        if self._cost_model is not None:
            self._cost_model.set_executor(None)
            self._cost_model = None
        if not self.keep_alive:
            self.close()

    def close(self) -> None:
        """Shut the workers down now (idempotent)."""
        if self.backend is not None:
            self.backend.shutdown()
            self.backend = None

    @property
    def alive_workers(self) -> int:
        """Live worker processes (0 when shut down or in-process)."""
        return 0 if self.backend is None else self.backend.alive_workers

    def __enter__(self) -> "ParallelCoordinator":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
