"""Process-parallel population evaluation with shared-memory batches.

The batched cost-model engine made ``evaluate_population`` the unit of
work; this package shards that unit across execution backends:

* :func:`~repro.parallel.backend.make_backend` builds a ``serial`` /
  ``thread`` / ``process`` :class:`~repro.parallel.backend
  .ExecutionBackend`; the process backend hands batches to persistent
  workers via zero-copy shared memory (:mod:`repro.parallel.shm`).
* :class:`~repro.parallel.coordinator.ParallelCoordinator` is the
  session observer that owns worker lifecycle; sessions build one
  automatically from ``SearchSpec.executor`` / ``SearchSpec.workers``.

Every backend is bit-identical to the serial kernel -- the determinism
suite in ``tests/test_parallel_parity.py`` holds that line.
"""

from repro.parallel.backend import (
    DEFAULT_DISPATCH_MIN_BATCH,
    EXECUTORS,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    default_dispatch_min_batch,
    default_workers,
    make_backend,
    shard_bounds,
)
from repro.parallel.coordinator import ParallelCoordinator
from repro.parallel.shm import BatchBlock

__all__ = [
    "DEFAULT_DISPATCH_MIN_BATCH",
    "EXECUTORS",
    "BatchBlock",
    "default_dispatch_min_batch",
    "ExecutionBackend",
    "ParallelCoordinator",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "default_workers",
    "make_backend",
    "shard_bounds",
]
