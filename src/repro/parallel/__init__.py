"""Process-parallel population evaluation with shared-memory batches.

The batched cost-model engine made ``evaluate_population`` the unit of
work; this package shards that unit across execution backends:

* :func:`~repro.parallel.backend.make_backend` builds a ``serial`` /
  ``thread`` / ``process`` / ``chaos`` :class:`~repro.parallel.backend
  .ExecutionBackend`; the process backend hands batches to persistent
  workers via zero-copy shared memory (:mod:`repro.parallel.shm`) and
  *supervises* them -- dead or hung workers are respawned and their lost
  shards re-dispatched, bounded by a retry budget
  (:mod:`repro.parallel.errors` is the failure taxonomy).
* :class:`~repro.parallel.distributed.DistributedBackend` extends the
  ladder past one host: batches shard over socket-connected
  ``repro worker`` node agents (self-spawned localhost fleet, or an
  external one via ``$REPRO_BIND``), with pull-based work stealing and
  the same supervision/recovery contract.
* :class:`~repro.parallel.backend.ResilientBackend` adds the
  distributed -> process -> thread -> serial degradation ladder on top
  of any backend.
* :class:`~repro.parallel.faults.FaultPlan` scripts deterministic
  worker kills / injected exceptions / delays (``$REPRO_FAULTS``, the
  ``chaos`` executor), so every recovery path is tested, not hoped for.
* :class:`~repro.parallel.coordinator.ParallelCoordinator` is the
  session observer that owns worker lifecycle and surfaces the
  fault-tolerance counters into ``SessionResult.provenance``; sessions
  build one automatically from ``SearchSpec.executor`` /
  ``SearchSpec.workers``.
* :mod:`repro.parallel.tuning` is the profile-guided layer:
  :class:`~repro.parallel.tuning.ThroughputModel` (per-worker EWMA of
  rows/sec from shard timing echoes), :class:`~repro.parallel.tuning
  .ShardPlanner` (initial shard spans proportional to measured rates),
  break-even calibration (``dispatch_min_batch="auto"``), and kernel
  auto-selection (``kernel="auto"``) -- all behind
  ``SearchSpec.autotune`` / ``$REPRO_AUTOTUNE``.  Scheduling only:
  results stay bit-identical with tuning on or off.

Every backend is bit-identical to the serial kernel -- crash-free,
recovered, or degraded -- the determinism suite in
``tests/test_parallel_parity.py`` holds that line.
"""

from repro.parallel.backend import (
    DEFAULT_DISPATCH_MIN_BATCH,
    DEFAULT_MAX_RETRIES,
    DEGRADATION_LADDER,
    EXECUTORS,
    ExecutionBackend,
    ProcessBackend,
    ResilientBackend,
    SerialBackend,
    ThreadBackend,
    TRANSPORT_MIN_BATCH,
    default_dispatch_min_batch,
    default_max_retries,
    default_task_timeout,
    default_workers,
    make_backend,
    shard_bounds,
)
from repro.parallel.coordinator import ParallelCoordinator, PoolLease
from repro.parallel.distributed import (
    DistributedBackend,
    default_bind,
    default_nodes,
    run_worker_agent,
    worker_agent_main,
)
from repro.parallel.errors import (
    ExecutionError,
    FaultInjected,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.parallel.faults import FaultPlan
from repro.parallel.shm import BatchBlock
from repro.parallel.tuning import (
    AUTOTUNE_ENV,
    BreakEvenCalibrator,
    ShardPlanner,
    ThroughputModel,
    TuningState,
    default_autotune,
    select_kernel,
)

__all__ = [
    "AUTOTUNE_ENV",
    "DEFAULT_DISPATCH_MIN_BATCH",
    "DEFAULT_MAX_RETRIES",
    "DEGRADATION_LADDER",
    "EXECUTORS",
    "BatchBlock",
    "BreakEvenCalibrator",
    "DistributedBackend",
    "ExecutionBackend",
    "ExecutionError",
    "FaultInjected",
    "FaultPlan",
    "ParallelCoordinator",
    "PoolLease",
    "ProcessBackend",
    "ResilientBackend",
    "SerialBackend",
    "ShardPlanner",
    "TRANSPORT_MIN_BATCH",
    "TaskTimeoutError",
    "ThreadBackend",
    "ThroughputModel",
    "TuningState",
    "WorkerCrashError",
    "default_autotune",
    "default_bind",
    "default_dispatch_min_batch",
    "default_max_retries",
    "default_nodes",
    "default_task_timeout",
    "default_workers",
    "make_backend",
    "run_worker_agent",
    "select_kernel",
    "shard_bounds",
    "worker_agent_main",
]
