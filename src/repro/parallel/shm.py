"""Zero-copy batch transport over ``multiprocessing.shared_memory``.

One :class:`BatchBlock` holds everything a sharded population evaluation
moves between the coordinator and its worker processes: the four decoded
input arrays (``layer_idx``, ``style_idx``, ``pes``, ``l1_bytes``) followed
by the eighteen output arrays of a
:class:`~repro.costmodel.report.BatchCostReport`, laid out back to back in
a single shared-memory segment.  Workers attach by name and build NumPy
views directly onto the segment, so neither the inputs nor the results are
ever pickled or copied through a pipe -- the only per-task IPC is a small
descriptor tuple (segment name, batch size, shard bounds).

Every array is eight bytes per element (``int64`` or ``float64``), which
keeps the layout a flat table of equally sized columns.
"""

from __future__ import annotations

from dataclasses import fields
from multiprocessing import shared_memory
from typing import Dict, Tuple

import numpy as np

from repro.costmodel.report import BatchCostReport

__all__ = [
    "BatchBlock",
    "INPUT_FIELDS",
    "REPORT_FIELDS",
    "block_size",
    "mute_resource_tracker",
]


def mute_resource_tracker() -> None:
    """Stop this process registering shared memory with the tracker.

    Called once at worker startup.  Workers only ever *attach* to
    segments the coordinator owns (and unlinks), but Python < 3.13
    registers attachments too (bpo-39959); since forked workers share
    the coordinator's tracker process, those duplicate registrations
    race the owner's unregister and surface as bogus "leaked
    shared_memory" warnings or KeyErrors at shutdown.  Workers create
    no tracked resources of their own, so muting is safe.
    """
    from multiprocessing import resource_tracker

    resource_tracker.register = lambda name, rtype: None

#: The decoded design-point arrays shipped to workers, in layout order.
INPUT_FIELDS: Tuple[Tuple[str, type], ...] = (
    ("layer_idx", np.int64),
    ("style_idx", np.int64),
    ("pes", np.int64),
    ("l1_bytes", np.int64),
)

#: ``BatchCostReport`` columns in declaration order with their dtypes; the
#: integer quantities mirror the report's documented int64 fields.
_INT_REPORT_FIELDS = frozenset(
    ("pes_used", "l1_bytes_per_pe", "l2_bytes", "tile_k", "macs"))
REPORT_FIELDS: Tuple[Tuple[str, type], ...] = tuple(
    (f.name, np.int64 if f.name in _INT_REPORT_FIELDS else np.float64)
    for f in fields(BatchCostReport)
)

_ALL_FIELDS = INPUT_FIELDS + REPORT_FIELDS
_BYTES_PER_ELEMENT = 8


def block_size(batch: int) -> int:
    """Bytes needed for one batch's inputs and outputs."""
    return len(_ALL_FIELDS) * _BYTES_PER_ELEMENT * batch


class BatchBlock:
    """One shared-memory segment viewed as the batch's input/output table.

    Create on the coordinator side with :meth:`allocate` (which also
    copies the input arrays in), attach on the worker side with
    :meth:`attach`.  Both sides see the same layout through the
    ``inputs`` / ``outputs`` dicts of NumPy views; a worker computing
    shard ``[lo:hi)`` slices every view and writes results in place.
    """

    def __init__(self, segment: shared_memory.SharedMemory, batch: int,
                 owner: bool) -> None:
        self._segment = segment
        self.batch = batch
        self._owner = owner
        self.inputs: Dict[str, np.ndarray] = {}
        self.outputs: Dict[str, np.ndarray] = {}
        offset = 0
        for name, dtype in INPUT_FIELDS:
            self.inputs[name] = np.ndarray(
                (batch,), dtype=dtype, buffer=segment.buf, offset=offset)
            offset += _BYTES_PER_ELEMENT * batch
        for name, dtype in REPORT_FIELDS:
            self.outputs[name] = np.ndarray(
                (batch,), dtype=dtype, buffer=segment.buf, offset=offset)
            offset += _BYTES_PER_ELEMENT * batch

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The segment name workers attach to."""
        return self._segment.name

    @classmethod
    def allocate(cls, layer_idx: np.ndarray, style_idx: np.ndarray,
                 pes: np.ndarray, l1_bytes: np.ndarray) -> "BatchBlock":
        """Create a segment sized for the batch and copy the inputs in."""
        batch = int(layer_idx.size)
        segment = shared_memory.SharedMemory(create=True,
                                             size=block_size(batch))
        try:
            block = cls(segment, batch, owner=True)
            np.copyto(block.inputs["layer_idx"], layer_idx, casting="no")
            np.copyto(block.inputs["style_idx"], style_idx, casting="no")
            np.copyto(block.inputs["pes"], pes, casting="no")
            np.copyto(block.inputs["l1_bytes"], l1_bytes, casting="no")
        except BaseException:
            # A failure between create and return (bad dtype, view
            # construction) would otherwise strand the OS segment --
            # nothing else holds its name yet, so release it here.
            segment.close()
            segment.unlink()
            raise
        return block

    @classmethod
    def attach(cls, name: str, batch: int) -> "BatchBlock":
        """Attach to a coordinator-owned segment (worker side).

        Workers must call :func:`mute_resource_tracker` once first:
        Python < 3.13 registers *attached* segments with the resource
        tracker (bpo-39959), and with forked workers those duplicate
        registrations race the owner's unlink, leaving phantom "leaked
        shared_memory" entries.
        """
        return cls(shared_memory.SharedMemory(name=name), batch,
                   owner=False)

    # ------------------------------------------------------------------
    def write_report(self, report: BatchCostReport, lo: int,
                     hi: int) -> None:
        """Store a shard's kernel output into rows ``[lo:hi)``."""
        for name, _ in REPORT_FIELDS:
            np.copyto(self.outputs[name][lo:hi], getattr(report, name),
                      casting="no")

    def gather_report(self) -> BatchCostReport:
        """The full batch's results, copied out of shared memory.

        The copy decouples the report's lifetime from the segment's, so
        the coordinator can release the segment immediately while callers
        keep the arrays as long as they like.
        """
        return BatchCostReport(
            **{name: self.outputs[name].copy() for name, _ in REPORT_FIELDS})

    def close(self) -> None:
        """Drop this process's mapping (workers) and, for the owner,
        release the segment itself."""
        # The views alias segment.buf; drop them before closing or the
        # exported-pointer check in SharedMemory.close() fails.
        self.inputs.clear()
        self.outputs.clear()
        self._segment.close()
        if self._owner:
            self._segment.unlink()

    def __enter__(self) -> "BatchBlock":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
