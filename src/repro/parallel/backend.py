"""Pluggable execution backends for batched population evaluation.

A backend answers one call -- :meth:`ExecutionBackend.evaluate` -- with
exactly the :class:`~repro.costmodel.report.BatchCostReport` the in-process
kernel would have produced.  Because
:func:`~repro.costmodel.batched.evaluate_batch_kernel` is elementwise over
the batch axis, a backend may split the batch at any boundaries, evaluate
the shards anywhere (threads, worker processes), and write the shard
outputs back at their offsets: the gathered report is bit-identical to a
single serial call, which is the invariant the parity suite in
``tests/test_parallel_parity.py`` locks down.

Four backends ship:

* :class:`SerialBackend` -- the in-process kernel (the do-nothing
  reference implementation every other backend must match bit for bit).
* :class:`ThreadBackend` -- shards across a persistent thread pool; NumPy
  releases the GIL inside its inner loops, so large batches overlap.
* :class:`ProcessBackend` -- shards across persistent worker processes
  with zero-copy array handoff via :mod:`repro.parallel.shm`.  Workers
  are spawned once, reused for every batch of a session, and shut down
  deterministically (``shutdown``, context-manager exit, or finalizer).
  The backend *supervises* its pool: a worker that dies or hangs
  mid-batch is respawned, its cached tables re-shipped, and only the
  lost shards re-dispatched -- bounded by a retry budget with
  exponential backoff -- so the recovered batch is bit-identical to a
  crash-free run (the kernel is pure and shard-invariant).
* ``chaos`` -- the process backend with a deterministic
  :class:`~repro.parallel.faults.FaultPlan` always attached
  (``$REPRO_FAULTS`` or a default seeded plan), so every recovery path
  is exercised by ordinary test runs.

:class:`ResilientBackend` wraps any parallel backend in the degradation
ladder: when a pool fails outright (retry budget exhausted -- an
:class:`~repro.parallel.errors.ExecutionError`), it downshifts
process -> thread -> serial via :func:`make_backend`, re-runs the failed
batch on the new rung, and records ``degraded_to`` -- the session
completes instead of dying.

Pick one by name with :func:`make_backend`.
"""

from __future__ import annotations

import os
import time
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import fields
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.costmodel.batched import (
    LayerTable,
    evaluate_batch_kernel,
    evaluate_with_kernel,
    table_token,
)
from repro.costmodel.constants import HardwareConfig
from repro.costmodel.fused import LRUCache, resolve_kernel
from repro.costmodel.report import BatchCostReport
from repro.parallel.errors import (
    ExecutionError,
    FaultInjected,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.parallel.faults import FaultPlan
from repro.parallel.shm import BatchBlock, mute_resource_tracker

__all__ = [
    "DEFAULT_DISPATCH_MIN_BATCH",
    "DEFAULT_MAX_RETRIES",
    "DEGRADATION_LADDER",
    "EXECUTORS",
    "ExecutionBackend",
    "ProcessBackend",
    "ResilientBackend",
    "SerialBackend",
    "ThreadBackend",
    "TRANSPORT_MIN_BATCH",
    "default_dispatch_min_batch",
    "default_max_retries",
    "default_task_timeout",
    "default_workers",
    "make_backend",
    "shard_bounds",
]

#: Names accepted by :func:`make_backend` and ``SearchSpec.executor``.
#: ``chaos`` is the process backend with a deterministic fault plan
#: attached -- same results, injected failures.  ``distributed`` shards
#: over socket-connected node agents (see
#: :mod:`repro.parallel.distributed`).
EXECUTORS: Tuple[str, ...] = ("serial", "thread", "process", "chaos",
                              "distributed")

#: Per-batch recovery budget: how many crash/timeout/fault recoveries a
#: single ``evaluate`` call may spend before raising (override with
#: ``$REPRO_MAX_RETRIES`` or the ``max_retries`` argument).
DEFAULT_MAX_RETRIES = 3

#: The downshift order :class:`ResilientBackend` walks after a pool
#: failure.  ``serial`` has no entry: it cannot fail for infrastructure
#: reasons, so an error there propagates.  A distributed fleet that
#: fails outright falls back to this host's process pool.
DEGRADATION_LADDER: Dict[str, str] = {"distributed": "process",
                                      "process": "thread",
                                      "thread": "serial"}

#: Default adaptive-dispatch threshold: batches smaller than this many
#: elements *per worker* run in-process instead of being sharded -- the
#: per-batch IPC cost (queue hop + shared-memory map) beats the kernel
#: itself below roughly this size (see the ``break_even`` section of
#: BENCH_parallel.json, written by ``bench_parallel_scaling.py``).
DEFAULT_DISPATCH_MIN_BATCH = 256

#: Measured per-transport break-even thresholds (elements per worker
#: below which the in-process kernel beats sharding): each hop up the
#: transport ladder adds per-batch cost -- thread wakeup < queue hop +
#: shared-memory map < socket round-trip + pickled arrays -- so each
#: needs a bigger batch to amortize it.  Calibrated by the
#: ``break_even.per_transport`` section of BENCH_parallel.json
#: (``bench_parallel_scaling.py``); resolved per executor by
#: ``SearchSpec.resolved_dispatch_min_batch``.
TRANSPORT_MIN_BATCH: Dict[str, int] = {
    "serial": 0,           # no dispatch cost to amortize
    "thread": 128,
    "process": DEFAULT_DISPATCH_MIN_BATCH,
    "chaos": DEFAULT_DISPATCH_MIN_BATCH,
    "distributed": 1024,
}


def default_workers() -> int:
    """Worker count when none is requested: ``$REPRO_WORKERS`` if set,
    else every available core (capped at 8 -- the batch sizes this
    repository produces stop scaling long before that)."""
    env = os.environ.get("REPRO_WORKERS")
    if env is not None:
        workers = int(env)
        if workers < 1:
            raise ValueError(f"REPRO_WORKERS must be >= 1, got {env!r}")
        return workers
    return max(1, min(8, os.cpu_count() or 1))


def default_dispatch_min_batch(executor: Optional[str] = None) -> int:
    """Adaptive-dispatch threshold when none is requested:
    ``$REPRO_DISPATCH_MIN`` if set (0 disables the fallback), else the
    transport's measured break-even from :data:`TRANSPORT_MIN_BATCH`
    (:data:`DEFAULT_DISPATCH_MIN_BATCH` when ``executor`` is ``None``
    or unknown -- the pre-calibration behavior)."""
    env = os.environ.get("REPRO_DISPATCH_MIN")
    if env is not None:
        threshold = int(env)
        if threshold < 0:
            raise ValueError(
                f"REPRO_DISPATCH_MIN must be >= 0, got {env!r}")
        return threshold
    if executor is None:
        return DEFAULT_DISPATCH_MIN_BATCH
    return TRANSPORT_MIN_BATCH.get(executor, DEFAULT_DISPATCH_MIN_BATCH)


def default_max_retries() -> int:
    """Per-batch recovery budget when none is requested:
    ``$REPRO_MAX_RETRIES`` if set (0 disables recovery: the first
    failure raises), else :data:`DEFAULT_MAX_RETRIES`."""
    env = os.environ.get("REPRO_MAX_RETRIES")
    if env is not None:
        retries = int(env)
        if retries < 0:
            raise ValueError(f"REPRO_MAX_RETRIES must be >= 0, got {env!r}")
        return retries
    return DEFAULT_MAX_RETRIES


def default_task_timeout() -> float:
    """Per-batch deadline in seconds when none is requested:
    ``$REPRO_TASK_TIMEOUT`` if set, else 0 (no deadline)."""
    env = os.environ.get("REPRO_TASK_TIMEOUT")
    if env is not None:
        timeout = float(env)
        if timeout < 0:
            raise ValueError(
                f"REPRO_TASK_TIMEOUT must be >= 0, got {env!r}")
        return timeout
    return 0.0


def shard_bounds(batch: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``[0, batch)`` into at most ``shards`` contiguous ranges.

    Remainder elements go to the leading shards, so shard sizes differ by
    at most one; empty shards are never produced.  The boundaries affect
    only *where* elements are computed, never their values.
    """
    shards = max(1, min(shards, batch))
    base, remainder = divmod(batch, shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < remainder else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class ExecutionBackend:
    """Interface: evaluate one validated batch, own any worker state.

    Args:
        workers: Degree of sharding.
        min_batch_per_worker: Adaptive-dispatch threshold -- batches with
            fewer than ``min_batch_per_worker * workers`` elements run
            through the in-process kernel instead of the workers (the
            IPC/wakeup cost exceeds the kernel below the break-even; see
            :func:`default_dispatch_min_batch`).  Directly constructed
            backends default to ``0`` (always shard, the legacy
            behavior); the spec-level surfaces (``SearchSpec`` sessions,
            ``compare_methods``, the CLI) resolve the adaptive default.
            Sharding never changes results, so neither does the
            fallback.
        kernel: Cost-model compute kernel ("batched" | "fused" |
            "fused32" | "fused-jit"); ``None`` resolves
            ``$REPRO_KERNEL`` then the batched default.  Every shard --
            in-process fallback, thread shard, worker process -- runs
            the same kernel, and the fused kinds are shard-invariant
            like the batched engine, so sharding still never changes
            results.
        tuner: Optional :class:`~repro.parallel.tuning.TuningState`.
            When set, completed shards feed its throughput model, its
            planner sizes initial shards, and (``auto_dispatch``) its
            calibrator replaces the static break-even table.  All of
            that only moves work between equally bit-identical
            execution paths, so a tuner never changes results either.
    """

    name = "base"

    def __init__(self, workers: int = 1,
                 min_batch_per_worker: int = 0,
                 kernel: str = None, tuner=None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if min_batch_per_worker < 0:
            raise ValueError("min_batch_per_worker must be >= 0")
        self.workers = workers
        self.min_batch_per_worker = min_batch_per_worker
        self.kernel = resolve_kernel(kernel)
        self.tuner = tuner
        # Compiled fused programs for in-process evaluation (the serial
        # backend, the thread shards, and the parallel backends'
        # below-break-even fallback).  Keyed (table_token(table),
        # kernel); bounded, and safe to share across threads (the LRU
        # locks, the programs keep per-thread scratch).
        self._programs = LRUCache(8)
        #: Dispatch counters: how many batches ran in-process vs sharded
        #: (observability for the adaptive fallback; never affects
        #: results).
        self.inline_batches = 0
        self.sharded_batches = 0

    def _below_break_even(self, batch: int) -> bool:
        """Whether ``batch`` is too small to be worth sharding."""
        return batch < self.min_batch_per_worker * self.workers

    def _route_inline(self, batch: int) -> bool:
        """Inline-vs-shard decision: the tuner's calibrated crossover
        when one is attached and calibrating, else the static
        threshold.  Both routes are bit-identical, so this only ever
        moves wall clock."""
        if self.tuner is not None and self.tuner.auto_dispatch:
            return self.tuner.route_inline(
                self.name, batch,
                self.min_batch_per_worker * self.workers)
        return self._below_break_even(batch)

    def _observe_route(self, batch: int, inline: bool,
                       elapsed_s: float) -> None:
        """Feed one timed batch back into the break-even calibrator."""
        if self.tuner is not None:
            self.tuner.observe_route(self.name, inline, batch, elapsed_s)

    def _plan_shards(self, batch: int, chunks_per_key: int = 1):
        """``(bounds, owners)`` for one batch: throughput-proportional
        when the tuner plans shards, else the static uniform
        round-robin (identical to the tuner's own fallback)."""
        keys = list(range(self.workers))
        if self.tuner is not None and self.tuner.plan_shards:
            return self.tuner.plan(batch, self.name, keys, chunks_per_key)
        bounds = shard_bounds(batch, self.workers * chunks_per_key)
        return bounds, [keys[i % len(keys)] for i in range(len(bounds))]

    def _observe_shard(self, key, rows: int, elapsed_s: float) -> None:
        """Feed one completed shard's timing into the throughput model."""
        if self.tuner is not None:
            self.tuner.observe(self.name, key, rows, elapsed_s)

    def _run_kernel(self, hw, table, layer_idx, style_idx, pes,
                    l1_bytes) -> BatchCostReport:
        """Run one (sub-)batch in-process through this backend's kernel."""
        return evaluate_with_kernel(self.kernel, hw, table, layer_idx,
                                    style_idx, pes, l1_bytes,
                                    programs=self._programs)

    def evaluate(self, hw: HardwareConfig, table: LayerTable,
                 layer_idx: np.ndarray, style_idx: np.ndarray,
                 pes: np.ndarray, l1_bytes: np.ndarray) -> BatchCostReport:
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release workers; the backend restarts lazily if reused."""

    @property
    def alive_workers(self) -> int:
        """Live worker processes/threads (0 for in-process backends)."""
        return 0

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(workers={self.workers})"


class SerialBackend(ExecutionBackend):
    """The in-process kernel; the reference the other backends must match."""

    name = "serial"

    def evaluate(self, hw, table, layer_idx, style_idx, pes,
                 l1_bytes) -> BatchCostReport:
        return self._run_kernel(hw, table, layer_idx, style_idx, pes,
                                l1_bytes)


def _concat_reports(parts: Sequence[BatchCostReport]) -> BatchCostReport:
    """Stitch in-order shard reports back into one batch report."""
    if len(parts) == 1:
        return parts[0]
    return BatchCostReport(**{
        f.name: np.concatenate([getattr(part, f.name) for part in parts])
        for f in fields(BatchCostReport)
    })


class ThreadBackend(ExecutionBackend):
    """Shard across a persistent thread pool in this process.

    Threads cannot be killed or respawned, so of the fault kinds only
    ``raise_in_kernel`` applies here, keyed ``(batch_idx, shard_idx)``
    and checked at dispatch time: it raises
    :class:`~repro.parallel.errors.FaultInjected` out of ``evaluate``
    (fire-once), which is how a chaos run exercises the degradation
    ladder's middle rung.
    """

    name = "thread"

    def __init__(self, workers: int = 1,
                 min_batch_per_worker: int = 0,
                 fault_plan: Optional[FaultPlan] = None,
                 kernel: str = None, tuner=None) -> None:
        super().__init__(workers, min_batch_per_worker, kernel=kernel,
                         tuner=tuner)
        self._pool: Optional[ThreadPoolExecutor] = None
        self.fault_plan = fault_plan
        self._fired_faults: set = set()
        self._next_task = 0

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-batch")
        return self._pool

    def _check_faults(self, task_id: int, shards: int) -> None:
        if self.fault_plan is None:
            return
        for batch_idx, shard_idx in self.fault_plan.raise_in_kernel:
            key = (batch_idx, shard_idx)
            if (batch_idx == task_id and shard_idx < shards
                    and key not in self._fired_faults):
                self._fired_faults.add(key)
                raise FaultInjected(
                    f"injected fault in thread shard {shard_idx} at "
                    f"batch {task_id}")

    def _run_shard(self, owner, hw, table, layer_idx, style_idx, pes,
                   l1_bytes) -> BatchCostReport:
        start = time.perf_counter()
        report = self._run_kernel(hw, table, layer_idx, style_idx, pes,
                                  l1_bytes)
        self._observe_shard(owner, layer_idx.size,
                            time.perf_counter() - start)
        return report

    def evaluate(self, hw, table, layer_idx, style_idx, pes,
                 l1_bytes) -> BatchCostReport:
        batch = layer_idx.size
        if self.workers == 1 or batch < 2 or self._route_inline(batch):
            self.inline_batches += 1
            start = time.perf_counter()
            report = self._run_kernel(hw, table, layer_idx, style_idx,
                                      pes, l1_bytes)
            self._observe_route(batch, True, time.perf_counter() - start)
            return report
        bounds, owners = self._plan_shards(batch)
        self.sharded_batches += 1
        task_id = self._next_task
        self._next_task += 1
        self._check_faults(task_id, len(bounds))
        pool = self._ensure_pool()
        start = time.perf_counter()
        futures = [
            pool.submit(self._run_shard, owner, hw, table,
                        layer_idx[lo:hi], style_idx[lo:hi], pes[lo:hi],
                        l1_bytes[lo:hi])
            for (lo, hi), owner in zip(bounds, owners)
        ]
        report = _concat_reports([future.result() for future in futures])
        self._observe_route(batch, False, time.perf_counter() - start)
        return report

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# ----------------------------------------------------------------------
# Process backend
# ----------------------------------------------------------------------
def _worker_main(worker_id: int, task_queue, result_queue,
                 faults: Optional[dict] = None) -> None:
    """Worker loop: evaluate shards of shared-memory batches until told
    to exit.  Tables and hardware constants arrive once per search
    (``load`` messages) and are cached by id; per-batch messages carry
    only the segment descriptor, so the arrays themselves never cross
    the queue.

    ``faults`` is this worker's slice of a
    :class:`~repro.parallel.faults.FaultPlan` (``{"kill": [batch...],
    "raise": [batch...], "delay": [[batch, seconds]...],
    "throttle": seconds_per_row}``), shipped at spawn time; respawned
    workers receive a pruned copy so a consumed fault never re-fires.
    Kills exit before the segment is touched, raises fire once each and
    are reported with the dedicated ``"fault"`` status (retryable),
    delays sleep before evaluating, and a throttle sleeps proportional
    to shard rows on *every* shard (a persistent straggler, charged to
    the timing echo).
    """
    mute_resource_tracker()
    kill_at = list(faults["kill"]) if faults else []
    raise_at = list(faults["raise"]) if faults else []
    throttle = float(faults.get("throttle", 0.0)) if faults else 0.0
    delay_at: Dict[int, float] = {}
    if faults:
        for batch_idx, seconds in faults["delay"]:
            delay_at[batch_idx] = delay_at.get(batch_idx, 0.0) + seconds
    tables: Dict[int, Tuple[HardwareConfig, LayerTable, str]] = {}
    # Compiled fused programs, one per shipped (table, kernel): compiled
    # on the first shard that needs them, reused for every later shard
    # of the session (the kernels are shard-invariant, so reuse can
    # never change results).
    programs = LRUCache(8)
    while True:
        message = task_queue.get()
        if message is None:
            break
        kind = message[0]
        if kind == "load":
            _, table_id, hw, layers, kernel = message
            tables[table_id] = (hw, LayerTable.build(layers), kernel)
            continue
        _, task_id, segment_name, batch, lo, hi, table_id = message
        if task_id in kill_at:
            os._exit(1)
        delay = delay_at.pop(task_id, 0.0)
        if throttle:
            delay += throttle * (hi - lo)
        if delay:
            time.sleep(delay)
        status, detail, elapsed = "ok", None, 0.0
        try:
            if task_id in raise_at:
                raise_at.remove(task_id)
                raise FaultInjected(
                    f"injected fault in worker {worker_id} at batch "
                    f"{task_id}")
            hw, table, kernel = tables[table_id]
            block = BatchBlock.attach(segment_name, batch)
            try:
                start = time.perf_counter()
                report = evaluate_with_kernel(
                    kernel, hw, table,
                    block.inputs["layer_idx"][lo:hi],
                    block.inputs["style_idx"][lo:hi],
                    block.inputs["pes"][lo:hi],
                    block.inputs["l1_bytes"][lo:hi],
                    programs=programs)
                # The kernel time alone is the timing echo: queue wait
                # and segment mapping are coordinator-side costs, and
                # including them would make a busy worker look slow and
                # starve it further.  Injected delays emulate a
                # straggler, so they ARE charged: the throughput model
                # must see the slow worker the plan routes around.
                elapsed = time.perf_counter() - start + delay
                block.write_report(report, lo, hi)
            finally:
                block.close()
        except FaultInjected as error:
            status, detail = "fault", repr(error)
        except BaseException as error:  # noqa: BLE001 - forwarded verbatim
            import traceback

            status, detail = "error", f"{error!r}\n{traceback.format_exc()}"
        result_queue.put((task_id, worker_id, lo, hi, status, detail,
                          elapsed))


class ProcessBackend(ExecutionBackend):
    """Shard batches across persistent, *supervised* worker processes.

    Workers are spawned lazily on the first batch (once per backend
    lifetime), reused for every subsequent batch -- a whole session's
    generations -- and shut down via :meth:`shutdown` / context exit; a
    ``weakref.finalize`` guard reaps them if the owner forgets.  Each
    batch travels through one shared-memory segment (see
    :mod:`repro.parallel.shm`); each worker gets a dedicated task queue
    so shard routing -- and therefore table shipping -- is deterministic.

    Supervision: a worker that dies mid-batch (OOM kill, segfault,
    injected fault) is detected by the result-wait loop, respawned with
    a fresh task queue, its cached tables re-shipped, and only its lost
    shards re-dispatched -- after an exponential backoff, bounded per
    batch by ``max_retries``.  A batch that misses ``task_timeout_s``
    has its hung workers terminated and recovered the same way.  The
    batched kernel is pure and shard-invariant, so a recovered batch is
    bit-identical to a crash-free one.  Exhausting the budget raises
    :class:`~repro.parallel.errors.WorkerCrashError` /
    :class:`~repro.parallel.errors.TaskTimeoutError` (both
    :class:`~repro.parallel.errors.ExecutionError`, the degradation
    ladder's cue) with the pool shut down for a clean restart.

    Args:
        workers: Worker process count.
        start_method: ``multiprocessing`` start method; default
            ``$REPRO_MP_START`` or ``fork`` where available (spawn works
            too, it just pays a per-worker interpreter start).
        min_batch_per_worker: Adaptive-dispatch threshold (see
            :class:`ExecutionBackend`); small batches run in-process and
            do not spawn the pool.
        max_retries: Per-batch recovery budget (``None``:
            ``$REPRO_MAX_RETRIES`` or :data:`DEFAULT_MAX_RETRIES`).
        backoff_base_s: First-retry backoff; attempt ``n`` sleeps
            ``backoff_base_s * 2**(n-1)``.
        task_timeout_s: Per-batch deadline in seconds; 0 disables
            (``None``: ``$REPRO_TASK_TIMEOUT`` or disabled).
        fault_plan: Deterministic fault injection script (``None``:
            ``$REPRO_FAULTS`` or no faults).

    Attributes:
        retries / respawns / timeouts: Recovery counters (never reset by
            :meth:`shutdown`), surfaced into ``SessionResult.provenance``
            by :class:`~repro.parallel.ParallelCoordinator`.  All stay 0
            in a crash-free run -- supervision costs nothing until a
            failure happens.
    """

    name = "process"

    #: Liveness/deadline poll interval while waiting on shard acks --
    #: also the worst-case crash-detection latency.
    POLL_S = 0.25

    def __init__(self, workers: int = 1,
                 start_method: Optional[str] = None,
                 min_batch_per_worker: int = 0,
                 max_retries: Optional[int] = None,
                 backoff_base_s: float = 0.05,
                 task_timeout_s: Optional[float] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 kernel: str = None, tuner=None) -> None:
        super().__init__(workers, min_batch_per_worker, kernel=kernel,
                         tuner=tuner)
        import multiprocessing

        if start_method is None:
            start_method = os.environ.get("REPRO_MP_START")
        if start_method is None:
            start_method = ("fork" if "fork"
                            in multiprocessing.get_all_start_methods()
                            else "spawn")
        self._context = multiprocessing.get_context(start_method)
        self.max_retries = (default_max_retries() if max_retries is None
                            else max_retries)
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        self.backoff_base_s = backoff_base_s
        if task_timeout_s is None:
            task_timeout_s = default_task_timeout()
        if task_timeout_s < 0:
            raise ValueError("task_timeout_s must be >= 0 (0 disables)")
        #: Per-batch deadline; ``None`` means no deadline.
        self.task_timeout_s = float(task_timeout_s) or None
        if fault_plan is None:
            fault_plan = FaultPlan.from_env()
        self.fault_plan = fault_plan
        # Mutable per-worker remainders of the plan's consumable fault
        # kinds: one occurrence is pruned per observed death / hang so a
        # respawned worker never replays a consumed fault.
        self._kills: Dict[int, List[int]] = {}
        self._delays: Dict[int, List[Tuple[int, float]]] = {}
        if fault_plan is not None:
            for worker_id in range(workers):
                self._kills[worker_id] = fault_plan.kills_for(worker_id)
                self._delays[worker_id] = fault_plan.delays_for(worker_id)
        self.retries = 0
        self.respawns = 0
        self.timeouts = 0
        self._processes: List = []
        self._task_queues: List = []
        self._result_queue = None
        self._tables: Dict[int, LayerTable] = {}
        self._shipped: List[set] = []
        self._generations: List[int] = []
        self._next_task = 0
        self._finalizer: Optional[weakref.finalize] = None

    # ------------------------------------------------------------------
    @property
    def alive_workers(self) -> int:
        return sum(1 for process in self._processes if process.is_alive())

    def _fault_wire(self, worker_id: int) -> Optional[dict]:
        """This worker's (remaining) slice of the fault plan, in the
        wire format ``_worker_main`` consumes."""
        if self.fault_plan is None:
            return None
        return {
            "kill": list(self._kills.get(worker_id, ())),
            "raise": self.fault_plan.raises_for(worker_id),
            "delay": [[batch, seconds] for batch, seconds
                      in self._delays.get(worker_id, ())],
            # Persistent straggler emulation: never pruned, a respawned
            # worker stays slow.
            "throttle": self.fault_plan.throttle_for(worker_id),
        }

    def _spawn(self, worker_id: int) -> None:
        generation = self._generations[worker_id]
        suffix = f"-r{generation}" if generation else ""
        process = self._context.Process(
            target=_worker_main,
            args=(worker_id, self._task_queues[worker_id],
                  self._result_queue, self._fault_wire(worker_id)),
            daemon=True,
            name=f"repro-worker-{worker_id}{suffix}")
        process.start()
        self._processes[worker_id] = process

    def _ensure_started(self) -> None:
        if self._processes:
            return
        self._result_queue = self._context.Queue()
        self._task_queues = [self._context.Queue()
                             for _ in range(self.workers)]
        self._processes = [None] * self.workers
        self._shipped = [set() for _ in range(self.workers)]
        self._generations = [0] * self.workers
        for worker_id in range(self.workers):
            self._spawn(worker_id)
        # The finalizer holds the *lists*, which respawns mutate in
        # place, so it always reaps the current pool members.
        self._finalizer = weakref.finalize(
            self, _shutdown_workers, self._processes, self._task_queues)

    def _respawn(self, worker_id: int, task_id: int) -> None:
        """Replace one dead or hung worker: terminate what is left of
        it, drop its task queue (undelivered messages and sentinels die
        with it), prune the faults it just consumed, and start a fresh
        incarnation that will be re-shipped tables on demand."""
        process = self._processes[worker_id]
        if process.is_alive():
            process.terminate()
        process.join(timeout=5)
        old_queue = self._task_queues[worker_id]
        try:
            old_queue.cancel_join_thread()
            old_queue.close()
        except (OSError, ValueError):  # pragma: no cover - already closed
            pass
        # Prune one occurrence of the faults that explain this event so
        # the replacement does not replay them (entries are multisets:
        # duplicates deliberately re-fire).
        kills = self._kills.get(worker_id)
        if kills and task_id in kills:
            kills.remove(task_id)
        delays = self._delays.get(worker_id)
        if delays:
            for entry in delays:
                if entry[0] == task_id:
                    delays.remove(entry)
                    break
        self._task_queues[worker_id] = self._context.Queue()
        self._shipped[worker_id] = set()
        self._generations[worker_id] += 1
        self._spawn(worker_id)
        self.respawns += 1

    def _ship_table(self, worker_id: int, hw: HardwareConfig,
                    table: LayerTable) -> int:
        """Make ``table`` available in a worker; returns its wire id.

        The wire id is the table's never-recycled generation token (the
        backend also pins every shipped table in ``self._tables``), so a
        collected table can never alias a later one worker-side.
        """
        table_id = table_token(table)
        self._tables[table_id] = table
        if table_id not in self._shipped[worker_id]:
            # The kernel rides the load message: the worker compiles its
            # fused program once per (table, kernel) and reuses it for
            # every shard (respawned workers are re-shipped on demand
            # and recompile -- programs are derived state, never lost).
            self._task_queues[worker_id].put(
                ("load", table_id, hw, table.layers, self.kernel))
            self._shipped[worker_id].add(table_id)
        return table_id

    def _dispatch(self, worker_id: int, task_id: int, block: BatchBlock,
                  lo: int, hi: int, hw, table) -> None:
        table_id = self._ship_table(worker_id, hw, table)
        self._task_queues[worker_id].put(
            ("eval", task_id, block.name, block.batch, lo, hi, table_id))

    def evaluate(self, hw, table, layer_idx, style_idx, pes,
                 l1_bytes) -> BatchCostReport:
        batch = layer_idx.size
        if self._route_inline(batch):
            # Too small to amortize the queue hop + segment map; the
            # in-process kernel is bit-identical, so only latency
            # changes.  An idle pool stays warm for the next big batch.
            self.inline_batches += 1
            start = time.perf_counter()
            report = self._run_kernel(hw, table, layer_idx, style_idx,
                                      pes, l1_bytes)
            self._observe_route(batch, True, time.perf_counter() - start)
            return report
        self.sharded_batches += 1
        self._ensure_started()
        bounds, owners = self._plan_shards(batch)
        task_id = self._next_task
        self._next_task += 1
        start = time.perf_counter()
        with BatchBlock.allocate(layer_idx, style_idx, pes,
                                 l1_bytes) as block:
            self._run_task(task_id, block, bounds, hw, table,
                           owners=owners)
            report = block.gather_report()
        self._observe_route(batch, False, time.perf_counter() - start)
        return report

    # ------------------------------------------------------------------
    def _run_task(self, task_id: int, block: BatchBlock, bounds, hw,
                  table, owners=None) -> None:
        """Dispatch one batch's shards and supervise them to completion.

        ``owners`` names the worker for each shard (the shard planner's
        assignment); without one the shards round-robin over the pool.
        The loop waits for shard acks while polling worker liveness and
        the batch deadline; lost shards (dead or hung worker, injected
        fault) are re-dispatched after recovery, bounded by
        ``max_retries`` recoveries per batch.  Stale acks -- from a
        worker terminated after it finished, or an earlier attempt of a
        recovered shard -- are recognized by (task, shard) bookkeeping
        and ignored; duplicate writes are idempotent because every
        attempt computes identical bytes.
        """
        import queue as queue_module

        pending: Dict[Tuple[int, int], int] = {}
        for shard, (lo, hi) in enumerate(bounds):
            worker_id = (owners[shard] if owners is not None
                         else shard % self.workers)
            self._dispatch(worker_id, task_id, block, lo, hi, hw, table)
            pending[(lo, hi)] = worker_id
        attempts = 0
        failures: List[Tuple[int, str]] = []
        timeout = self.task_timeout_s
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while pending:
            wait = self.POLL_S
            if deadline is not None:
                wait = min(wait, max(0.0, deadline - time.monotonic()))
            message = None
            try:
                message = self._result_queue.get(timeout=wait)
            except queue_module.Empty:
                pass
            if message is not None:
                done_id, worker_id, lo, hi, status, detail, elapsed = \
                    message
                if done_id != task_id or (lo, hi) not in pending:
                    continue  # stale ack from a recovered attempt
                if status == "ok":
                    del pending[(lo, hi)]
                    self._observe_shard(worker_id, hi - lo, elapsed)
                elif status == "fault":
                    # Injected and explicitly retryable; the worker is
                    # alive and will not re-fire, so re-dispatch the
                    # same shard right back to it.
                    attempts = self._account_recovery(
                        task_id, attempts, "fault",
                        f"injected fault on worker {worker_id}")
                    self._dispatch(worker_id, task_id, block, lo, hi, hw,
                                   table)
                else:
                    # A genuine kernel error is deterministic: burning
                    # the retry budget (or a downshift) on it would only
                    # delay the same failure, so surface it -- but only
                    # after the remaining shards drain, keeping the pool
                    # consistent for the next batch.
                    failures.append((worker_id, detail))
                    del pending[(lo, hi)]
                continue
            # Nothing arrived inside the poll window: look for dead
            # workers among the pending shards, then check the deadline.
            dead = sorted({wid for wid in pending.values()
                           if not self._processes[wid].is_alive()})
            if dead:
                names = [self._processes[wid].name for wid in dead]
                attempts = self._account_recovery(
                    task_id, attempts, "crash",
                    f"worker(s) died mid-batch: {', '.join(names)}",
                    worker_names=names)
                self._recover(task_id, block, pending, dead, hw, table)
                if deadline is not None:
                    deadline = time.monotonic() + timeout
                continue
            if deadline is not None and time.monotonic() >= deadline:
                hung = sorted(set(pending.values()))
                self.timeouts += 1
                attempts = self._account_recovery(
                    task_id, attempts, "timeout",
                    f"batch {task_id} missed its {timeout}s deadline "
                    f"({len(pending)} shard(s) outstanding)")
                self._recover(task_id, block, pending, hung, hw, table)
                deadline = time.monotonic() + timeout
        if failures:
            worker_id, detail = failures[0]
            raise RuntimeError(
                f"parallel worker {worker_id} failed:\n{detail}")

    def _account_recovery(self, task_id: int, attempts: int, kind: str,
                          reason: str, worker_names=()) -> int:
        """Charge one recovery against the batch budget; raise the
        matching :class:`~repro.parallel.errors.ExecutionError` when it
        is spent (with the pool reset so a retrying caller starts
        clean), else back off exponentially and return the new count."""
        attempts += 1
        self.retries += 1
        if attempts > self.max_retries:
            self.shutdown()
            message = (f"parallel batch {task_id}: {reason}; retry "
                       f"budget ({self.max_retries}) exhausted")
            if kind == "timeout":
                raise TaskTimeoutError(message,
                                       timeout_s=self.task_timeout_s or 0.0)
            if kind == "fault":
                raise FaultInjected(message)
            raise WorkerCrashError(message, worker_names=worker_names)
        if self.backoff_base_s:
            time.sleep(self.backoff_base_s * 2 ** (attempts - 1))
        return attempts

    def _recover(self, task_id: int, block: BatchBlock, pending,
                 worker_ids, hw, table) -> None:
        """Respawn the given workers and re-dispatch their lost shards
        (only those -- completed shards stay completed)."""
        for worker_id in worker_ids:
            self._respawn(worker_id, task_id)
        for (lo, hi), worker_id in list(pending.items()):
            if worker_id in worker_ids:
                self._dispatch(worker_id, task_id, block, lo, hi, hw,
                               table)

    def shutdown(self) -> None:
        if not self._processes:
            return
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        _shutdown_workers(self._processes, self._task_queues)
        if self._result_queue is not None:
            import queue as queue_module

            # Drain stale acks (from terminated or timed-out attempts)
            # so the feeder thread has nothing left to flush, then drop
            # the queue without joining it.
            try:
                while True:
                    self._result_queue.get_nowait()
            except (queue_module.Empty, OSError, ValueError):
                pass
            self._result_queue.cancel_join_thread()
            self._result_queue.close()
        self._processes = []
        self._task_queues = []
        self._result_queue = None
        self._shipped = []
        self._generations = []
        self._tables = {}


def _shutdown_workers(processes, task_queues) -> None:
    """Ask workers to exit, then make sure they did (module-level so a
    ``weakref.finalize`` can run it after the backend is gone)."""
    for task_queue in task_queues:
        try:
            task_queue.put(None)
        except (OSError, ValueError):  # pragma: no cover - closed queue
            pass
    for process in processes:
        process.join(timeout=5)
    for process in processes:
        if process.is_alive():  # pragma: no cover - stuck worker
            process.terminate()
            process.join(timeout=5)
    for task_queue in task_queues:
        # A terminate()d worker leaves its exit sentinel (and any
        # undelivered messages) in the queue; cancel_join_thread stops
        # the feeder from blocking interpreter exit on that undrained
        # buffer, then close drops it.
        try:
            task_queue.cancel_join_thread()
            task_queue.close()
        except (OSError, ValueError):  # pragma: no cover - already closed
            pass


# ----------------------------------------------------------------------
# Degradation ladder
# ----------------------------------------------------------------------
class ResilientBackend(ExecutionBackend):
    """Graceful-degradation wrapper around a parallel backend.

    Delegates every batch to the wrapped backend; when that backend
    fails outright -- its per-batch retry budget exhausted, surfacing an
    :class:`~repro.parallel.errors.ExecutionError` -- the wrapper walks
    :data:`DEGRADATION_LADDER` (process -> thread -> serial) via
    :func:`make_backend`, re-runs the failed batch on the new rung
    (bit-identical: the kernel is pure), and keeps going.  The session
    completes; ``degraded_to`` records where it landed.  Genuine kernel
    errors (plain ``RuntimeError``) pass through untouched.

    :class:`~repro.parallel.ParallelCoordinator` wraps the backends it
    builds in one of these (``degrade=True``) and surfaces
    :meth:`stats` into ``SessionResult.provenance["execution"]``.

    Args:
        inner: The backend to supervise.
        degrade_after: Pool failures tolerated at a rung before
            downshifting (intermediate failures re-run the batch on the
            same backend, which restarts lazily).
        on_degrade: ``callback(error, from_name, to_name)`` fired on
            every downshift -- the coordinator bridges it to the
            observer protocol as a structured warning.
    """

    name = "resilient"

    def __init__(self, inner: ExecutionBackend, degrade_after: int = 1,
                 on_degrade=None) -> None:
        super().__init__(inner.workers, inner.min_batch_per_worker,
                         kernel=inner.kernel,
                         tuner=getattr(inner, "tuner", None))
        if degrade_after < 1:
            raise ValueError("degrade_after must be >= 1")
        self.inner = inner
        self.degrade_after = degrade_after
        self.on_degrade = on_degrade
        self.pool_failures = 0
        self.degraded_to: Optional[str] = None
        self._failures_at_rung = 0
        # Counters of retired rungs, folded into stats() alongside the
        # live inner backend's.  The distributed-only keys read 0 for
        # every other backend (getattr default), so the stats schema is
        # uniform across executors.
        self._absorbed = {"retries": 0, "respawns": 0, "timeouts": 0,
                          "inline_batches": 0, "sharded_batches": 0,
                          "stolen_shards": 0, "reships": 0, "nodes": 0}

    #: stats()/absorbed key -> backend attribute, where they differ
    #: ("nodes" reports the *peak connected fleet*, not the request).
    _STAT_ATTRS = {"nodes": "fleet_nodes"}

    # ------------------------------------------------------------------
    @property
    def alive_workers(self) -> int:
        return self.inner.alive_workers

    def _absorb(self, backend: ExecutionBackend) -> None:
        for key in self._absorbed:
            self._absorbed[key] += getattr(
                backend, self._STAT_ATTRS.get(key, key), 0)

    def stats(self) -> Dict[str, object]:
        """Aggregated fault-tolerance counters across every rung used."""
        data = dict(self._absorbed)
        for key in list(data):
            data[key] += getattr(self.inner,
                                 self._STAT_ATTRS.get(key, key), 0)
        data["pool_failures"] = self.pool_failures
        data["degraded_to"] = self.degraded_to
        data["executor"] = self.inner.name
        return data

    def evaluate(self, hw, table, layer_idx, style_idx, pes,
                 l1_bytes) -> BatchCostReport:
        while True:
            try:
                return self.inner.evaluate(hw, table, layer_idx,
                                           style_idx, pes, l1_bytes)
            except ExecutionError as error:
                self.pool_failures += 1
                self._failures_at_rung += 1
                next_name = DEGRADATION_LADDER.get(self.inner.name)
                if next_name is None:
                    raise
                if self._failures_at_rung < self.degrade_after:
                    # Budget left at this rung: the failed backend shut
                    # its pool down, so the re-run respawns it fresh.
                    continue
                previous = self.inner.name
                self._absorb(self.inner)
                self.inner.shutdown()
                # The tuner rides down the ladder: rates measured on
                # the failed rung are keyed by (transport, slot), so
                # the new rung starts fresh while the calibrated
                # crossovers and kernel record survive.
                self.inner = make_backend(
                    next_name, self.workers, self.min_batch_per_worker,
                    fault_plan=getattr(self.inner, "fault_plan", None),
                    kernel=self.kernel, tuner=self.tuner)
                self.degraded_to = next_name
                self._failures_at_rung = 0
                if self.on_degrade is not None:
                    self.on_degrade(error, previous, next_name)

    def shutdown(self) -> None:
        self.inner.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ResilientBackend({self.inner!r}, "
                f"degraded_to={self.degraded_to!r})")


_BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
    "chaos": ProcessBackend,
}


def make_backend(executor: str, workers: Optional[int] = None,
                 min_batch_per_worker: int = 0,
                 task_timeout_s: Optional[float] = None,
                 max_retries: Optional[int] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 kernel: Optional[str] = None,
                 tuner=None) -> ExecutionBackend:
    """Build a backend by name ("serial" | "thread" | "process" |
    "chaos").

    ``min_batch_per_worker`` enables adaptive dispatch on the parallel
    backends (0, the default, always shards -- see
    :class:`ExecutionBackend`); the serial backend ignores it, as it
    does the fault-tolerance knobs.  ``chaos`` is the process backend
    with a :class:`~repro.parallel.faults.FaultPlan` always attached:
    ``fault_plan``, else ``$REPRO_FAULTS``, else a default seeded plan.
    ``kernel`` picks the cost-model compute kernel everywhere the
    backend evaluates (``None``: ``$REPRO_KERNEL`` or "batched").
    ``tuner`` is an optional shared
    :class:`~repro.parallel.tuning.TuningState`; the coordinator passes
    one instance through every backend it builds (downshifts included)
    so measurements accumulate across pool rebuilds.
    For ``distributed``, ``workers`` is the node-fleet size (``None``:
    ``$REPRO_NODES`` or the built-in default) and the listen address
    comes from ``$REPRO_BIND`` (unset: a self-spawned localhost fleet).
    """
    if executor == "distributed":
        # Imported lazily: distributed.py imports this module.
        from repro.parallel.distributed import DistributedBackend

        return DistributedBackend(
            nodes=workers, min_batch_per_worker=min_batch_per_worker,
            task_timeout_s=task_timeout_s, max_retries=max_retries,
            fault_plan=fault_plan, kernel=kernel, tuner=tuner)
    try:
        cls = _BACKENDS[executor]
    except KeyError:
        raise ValueError(
            f"unknown executor {executor!r}; available: "
            f"{', '.join(EXECUTORS)}") from None
    workers = default_workers() if workers is None else workers
    if cls is SerialBackend:
        return cls(workers=workers, kernel=kernel)
    if cls is ThreadBackend:
        return cls(workers=workers,
                   min_batch_per_worker=min_batch_per_worker,
                   fault_plan=fault_plan, kernel=kernel, tuner=tuner)
    if executor == "chaos" and fault_plan is None:
        fault_plan = FaultPlan.from_env() or FaultPlan.seeded(0)
    return cls(workers=workers, min_batch_per_worker=min_batch_per_worker,
               task_timeout_s=task_timeout_s, max_retries=max_retries,
               fault_plan=fault_plan, kernel=kernel, tuner=tuner)
