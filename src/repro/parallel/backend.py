"""Pluggable execution backends for batched population evaluation.

A backend answers one call -- :meth:`ExecutionBackend.evaluate` -- with
exactly the :class:`~repro.costmodel.report.BatchCostReport` the in-process
kernel would have produced.  Because
:func:`~repro.costmodel.batched.evaluate_batch_kernel` is elementwise over
the batch axis, a backend may split the batch at any boundaries, evaluate
the shards anywhere (threads, worker processes), and write the shard
outputs back at their offsets: the gathered report is bit-identical to a
single serial call, which is the invariant the parity suite in
``tests/test_parallel_parity.py`` locks down.

Three backends ship:

* :class:`SerialBackend` -- the in-process kernel (the do-nothing
  reference implementation every other backend must match bit for bit).
* :class:`ThreadBackend` -- shards across a persistent thread pool; NumPy
  releases the GIL inside its inner loops, so large batches overlap.
* :class:`ProcessBackend` -- shards across persistent worker processes
  with zero-copy array handoff via :mod:`repro.parallel.shm`.  Workers
  are spawned once, reused for every batch of a session, and shut down
  deterministically (``shutdown``, context-manager exit, or finalizer).

Pick one by name with :func:`make_backend`.
"""

from __future__ import annotations

import os
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import fields
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.costmodel.batched import LayerTable, evaluate_batch_kernel
from repro.costmodel.constants import HardwareConfig
from repro.costmodel.report import BatchCostReport
from repro.parallel.shm import BatchBlock, mute_resource_tracker

__all__ = [
    "DEFAULT_DISPATCH_MIN_BATCH",
    "EXECUTORS",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "default_dispatch_min_batch",
    "default_workers",
    "make_backend",
    "shard_bounds",
]

#: Names accepted by :func:`make_backend` and ``SearchSpec.executor``.
EXECUTORS: Tuple[str, ...] = ("serial", "thread", "process")

#: Default adaptive-dispatch threshold: batches smaller than this many
#: elements *per worker* run in-process instead of being sharded -- the
#: per-batch IPC cost (queue hop + shared-memory map) beats the kernel
#: itself below roughly this size (see the ``break_even`` section of
#: BENCH_parallel.json, written by ``bench_parallel_scaling.py``).
DEFAULT_DISPATCH_MIN_BATCH = 256


def default_workers() -> int:
    """Worker count when none is requested: ``$REPRO_WORKERS`` if set,
    else every available core (capped at 8 -- the batch sizes this
    repository produces stop scaling long before that)."""
    env = os.environ.get("REPRO_WORKERS")
    if env is not None:
        workers = int(env)
        if workers < 1:
            raise ValueError(f"REPRO_WORKERS must be >= 1, got {env!r}")
        return workers
    return max(1, min(8, os.cpu_count() or 1))


def default_dispatch_min_batch() -> int:
    """Adaptive-dispatch threshold when none is requested:
    ``$REPRO_DISPATCH_MIN`` if set (0 disables the fallback), else
    :data:`DEFAULT_DISPATCH_MIN_BATCH`."""
    env = os.environ.get("REPRO_DISPATCH_MIN")
    if env is not None:
        threshold = int(env)
        if threshold < 0:
            raise ValueError(
                f"REPRO_DISPATCH_MIN must be >= 0, got {env!r}")
        return threshold
    return DEFAULT_DISPATCH_MIN_BATCH


def shard_bounds(batch: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``[0, batch)`` into at most ``shards`` contiguous ranges.

    Remainder elements go to the leading shards, so shard sizes differ by
    at most one; empty shards are never produced.  The boundaries affect
    only *where* elements are computed, never their values.
    """
    shards = max(1, min(shards, batch))
    base, remainder = divmod(batch, shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < remainder else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class ExecutionBackend:
    """Interface: evaluate one validated batch, own any worker state.

    Args:
        workers: Degree of sharding.
        min_batch_per_worker: Adaptive-dispatch threshold -- batches with
            fewer than ``min_batch_per_worker * workers`` elements run
            through the in-process kernel instead of the workers (the
            IPC/wakeup cost exceeds the kernel below the break-even; see
            :func:`default_dispatch_min_batch`).  Directly constructed
            backends default to ``0`` (always shard, the legacy
            behavior); the spec-level surfaces (``SearchSpec`` sessions,
            ``compare_methods``, the CLI) resolve the adaptive default.
            Sharding never changes results, so neither does the
            fallback.
    """

    name = "base"

    def __init__(self, workers: int = 1,
                 min_batch_per_worker: int = 0) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if min_batch_per_worker < 0:
            raise ValueError("min_batch_per_worker must be >= 0")
        self.workers = workers
        self.min_batch_per_worker = min_batch_per_worker
        #: Dispatch counters: how many batches ran in-process vs sharded
        #: (observability for the adaptive fallback; never affects
        #: results).
        self.inline_batches = 0
        self.sharded_batches = 0

    def _below_break_even(self, batch: int) -> bool:
        """Whether ``batch`` is too small to be worth sharding."""
        return batch < self.min_batch_per_worker * self.workers

    def evaluate(self, hw: HardwareConfig, table: LayerTable,
                 layer_idx: np.ndarray, style_idx: np.ndarray,
                 pes: np.ndarray, l1_bytes: np.ndarray) -> BatchCostReport:
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release workers; the backend restarts lazily if reused."""

    @property
    def alive_workers(self) -> int:
        """Live worker processes/threads (0 for in-process backends)."""
        return 0

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(workers={self.workers})"


class SerialBackend(ExecutionBackend):
    """The in-process kernel; the reference the other backends must match."""

    name = "serial"

    def evaluate(self, hw, table, layer_idx, style_idx, pes,
                 l1_bytes) -> BatchCostReport:
        return evaluate_batch_kernel(hw, table, layer_idx, style_idx, pes,
                                     l1_bytes)


def _concat_reports(parts: Sequence[BatchCostReport]) -> BatchCostReport:
    """Stitch in-order shard reports back into one batch report."""
    if len(parts) == 1:
        return parts[0]
    return BatchCostReport(**{
        f.name: np.concatenate([getattr(part, f.name) for part in parts])
        for f in fields(BatchCostReport)
    })


class ThreadBackend(ExecutionBackend):
    """Shard across a persistent thread pool in this process."""

    name = "thread"

    def __init__(self, workers: int = 1,
                 min_batch_per_worker: int = 0) -> None:
        super().__init__(workers, min_batch_per_worker)
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-batch")
        return self._pool

    def evaluate(self, hw, table, layer_idx, style_idx, pes,
                 l1_bytes) -> BatchCostReport:
        bounds = shard_bounds(layer_idx.size, self.workers)
        if len(bounds) == 1 or self._below_break_even(layer_idx.size):
            self.inline_batches += 1
            return evaluate_batch_kernel(hw, table, layer_idx, style_idx,
                                         pes, l1_bytes)
        self.sharded_batches += 1
        pool = self._ensure_pool()
        futures = [
            pool.submit(evaluate_batch_kernel, hw, table,
                        layer_idx[lo:hi], style_idx[lo:hi], pes[lo:hi],
                        l1_bytes[lo:hi])
            for lo, hi in bounds
        ]
        return _concat_reports([future.result() for future in futures])

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# ----------------------------------------------------------------------
# Process backend
# ----------------------------------------------------------------------
def _worker_main(worker_id: int, task_queue, result_queue) -> None:
    """Worker loop: evaluate shards of shared-memory batches until told
    to exit.  Tables and hardware constants arrive once per search
    (``load`` messages) and are cached by id; per-batch messages carry
    only the segment descriptor, so the arrays themselves never cross
    the queue."""
    mute_resource_tracker()
    tables: Dict[int, Tuple[HardwareConfig, LayerTable]] = {}
    while True:
        message = task_queue.get()
        if message is None:
            break
        kind = message[0]
        if kind == "load":
            _, table_id, hw, layers = message
            tables[table_id] = (hw, LayerTable.build(layers))
            continue
        _, task_id, segment_name, batch, lo, hi, table_id = message
        try:
            hw, table = tables[table_id]
            block = BatchBlock.attach(segment_name, batch)
            try:
                report = evaluate_batch_kernel(
                    hw, table,
                    block.inputs["layer_idx"][lo:hi],
                    block.inputs["style_idx"][lo:hi],
                    block.inputs["pes"][lo:hi],
                    block.inputs["l1_bytes"][lo:hi])
                block.write_report(report, lo, hi)
            finally:
                block.close()
        except BaseException as error:  # noqa: BLE001 - forwarded verbatim
            import traceback

            result_queue.put((task_id, worker_id, "error",
                              f"{error!r}\n{traceback.format_exc()}"))
        else:
            result_queue.put((task_id, worker_id, "ok", None))


class ProcessBackend(ExecutionBackend):
    """Shard batches across persistent worker processes.

    Workers are spawned lazily on the first batch (once per backend
    lifetime), reused for every subsequent batch -- a whole session's
    generations -- and shut down via :meth:`shutdown` / context exit; a
    ``weakref.finalize`` guard reaps them if the owner forgets.  Each
    batch travels through one shared-memory segment (see
    :mod:`repro.parallel.shm`); each worker gets a dedicated task queue
    so shard routing -- and therefore table shipping -- is deterministic.

    Args:
        workers: Worker process count.
        start_method: ``multiprocessing`` start method; default
            ``$REPRO_MP_START`` or ``fork`` where available (spawn works
            too, it just pays a per-worker interpreter start).
        min_batch_per_worker: Adaptive-dispatch threshold (see
            :class:`ExecutionBackend`); small batches run in-process and
            do not spawn the pool.
    """

    name = "process"

    def __init__(self, workers: int = 1,
                 start_method: Optional[str] = None,
                 min_batch_per_worker: int = 0) -> None:
        super().__init__(workers, min_batch_per_worker)
        import multiprocessing

        if start_method is None:
            start_method = os.environ.get("REPRO_MP_START")
        if start_method is None:
            start_method = ("fork" if "fork"
                            in multiprocessing.get_all_start_methods()
                            else "spawn")
        self._context = multiprocessing.get_context(start_method)
        self._processes: List = []
        self._task_queues: List = []
        self._result_queue = None
        self._tables: Dict[int, LayerTable] = {}
        self._shipped: List[set] = []
        self._next_task = 0
        self._finalizer: Optional[weakref.finalize] = None

    # ------------------------------------------------------------------
    @property
    def alive_workers(self) -> int:
        return sum(1 for process in self._processes if process.is_alive())

    def _ensure_started(self) -> None:
        if self._processes:
            return
        self._result_queue = self._context.Queue()
        self._task_queues = [self._context.Queue()
                             for _ in range(self.workers)]
        self._processes = []
        for worker_id, task_queue in enumerate(self._task_queues):
            process = self._context.Process(
                target=_worker_main,
                args=(worker_id, task_queue, self._result_queue),
                daemon=True,
                name=f"repro-worker-{worker_id}")
            process.start()
            self._processes.append(process)
        self._shipped = [set() for _ in range(self.workers)]
        self._finalizer = weakref.finalize(
            self, _shutdown_workers, self._processes, self._task_queues)

    def _ship_table(self, worker_id: int, hw: HardwareConfig,
                    table: LayerTable) -> int:
        """Make ``table`` available in a worker; returns its wire id.

        The backend pins every shipped table (``self._tables``) so its
        ``id()`` cannot be recycled while workers still key on it.
        """
        table_id = id(table)
        self._tables[table_id] = table
        if table_id not in self._shipped[worker_id]:
            self._task_queues[worker_id].put(
                ("load", table_id, hw, table.layers))
            self._shipped[worker_id].add(table_id)
        return table_id

    def evaluate(self, hw, table, layer_idx, style_idx, pes,
                 l1_bytes) -> BatchCostReport:
        if self._below_break_even(layer_idx.size):
            # Too small to amortize the queue hop + segment map; the
            # in-process kernel is bit-identical, so only latency
            # changes.  An idle pool stays warm for the next big batch.
            self.inline_batches += 1
            return evaluate_batch_kernel(hw, table, layer_idx, style_idx,
                                         pes, l1_bytes)
        self.sharded_batches += 1
        self._ensure_started()
        bounds = shard_bounds(layer_idx.size, self.workers)
        task_id = self._next_task
        self._next_task += 1
        with BatchBlock.allocate(layer_idx, style_idx, pes,
                                 l1_bytes) as block:
            for shard, (lo, hi) in enumerate(bounds):
                worker_id = shard % self.workers
                table_id = self._ship_table(worker_id, hw, table)
                self._task_queues[worker_id].put(
                    ("eval", task_id, block.name, block.batch, lo, hi,
                     table_id))
            failures = []
            for _ in bounds:
                done_id, worker_id, status, detail = self._next_result()
                if done_id != task_id:  # pragma: no cover - defensive
                    raise RuntimeError(
                        f"out-of-order result for task {done_id} "
                        f"(expected {task_id})")
                if status != "ok":
                    failures.append((worker_id, detail))
            if failures:
                worker_id, detail = failures[0]
                raise RuntimeError(
                    f"parallel worker {worker_id} failed:\n{detail}")
            return block.gather_report()

    def _next_result(self, poll_s: float = 1.0):
        """One shard ack, polling worker liveness so a worker killed
        mid-batch (OOM, segfault) raises instead of hanging the search
        forever on a result that will never arrive."""
        import queue

        while True:
            try:
                return self._result_queue.get(timeout=poll_s)
            except queue.Empty:
                dead = [process.name for process in self._processes
                        if not process.is_alive()]
                if dead:
                    # The pool is unusable with a member gone; reset so
                    # a retrying caller gets a fresh spawn.
                    self.shutdown()
                    raise RuntimeError(
                        f"parallel worker(s) died mid-batch: "
                        f"{', '.join(dead)}") from None

    def shutdown(self) -> None:
        if not self._processes:
            return
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        _shutdown_workers(self._processes, self._task_queues)
        if self._result_queue is not None:
            self._result_queue.close()
        self._processes = []
        self._task_queues = []
        self._result_queue = None
        self._shipped = []
        self._tables = {}


def _shutdown_workers(processes, task_queues) -> None:
    """Ask workers to exit, then make sure they did (module-level so a
    ``weakref.finalize`` can run it after the backend is gone)."""
    for task_queue in task_queues:
        try:
            task_queue.put(None)
        except (OSError, ValueError):  # pragma: no cover - closed queue
            pass
    for process in processes:
        process.join(timeout=5)
    for process in processes:
        if process.is_alive():  # pragma: no cover - stuck worker
            process.terminate()
            process.join(timeout=5)
    for task_queue in task_queues:
        task_queue.close()


_BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def make_backend(executor: str, workers: Optional[int] = None,
                 min_batch_per_worker: int = 0) -> ExecutionBackend:
    """Build a backend by name ("serial" | "thread" | "process").

    ``min_batch_per_worker`` enables adaptive dispatch on the parallel
    backends (0, the default, always shards -- see
    :class:`ExecutionBackend`); the serial backend ignores it.
    """
    try:
        cls = _BACKENDS[executor]
    except KeyError:
        raise ValueError(
            f"unknown executor {executor!r}; available: "
            f"{', '.join(EXECUTORS)}") from None
    workers = default_workers() if workers is None else workers
    if cls is SerialBackend:
        return cls(workers=workers)
    return cls(workers=workers, min_batch_per_worker=min_batch_per_worker)
