"""Profile-guided adaptive execution (ROADMAP item 2 follow-on).

Every dispatch decision the execution backends make was static until
now: uniform round-robin shard sizes, a hard-coded per-transport
``TRANSPORT_MIN_BATCH`` break-even table, and a hand-picked kernel.
This module closes the loop from the measurements the backends already
take -- shard completion timestamps observed in their result-gather
loops -- back into the next dispatch:

* :class:`ThroughputModel` -- a thread-safe EWMA of rows/sec per
  ``(transport, worker-or-node)`` key.  Keys are stable slot numbers,
  so a respawned worker (or a fleet that survives a
  :class:`~repro.parallel.backend.ResilientBackend` ladder rung)
  inherits its history.
* :class:`ShardPlanner` -- sizes initial shards proportional to the
  measured rates.  Work stealing still rebalances tails; with
  ``steal=False`` and no measurements the plan degrades to exactly the
  static uniform round-robin, so results and schedules are unchanged
  until rates exist.
* :class:`BreakEvenCalibrator` -- ``dispatch_min_batch="auto"``: the
  first batches alternate inline vs sharded execution, timing both, and
  converge on a per-transport crossover instead of the static table.
* :func:`select_kernel` -- ``kernel="auto"``: a one-shot micro-probe at
  session start times the batched engine against the fused program on a
  synthetic tiled batch and picks the faster of the two.  Only the
  bit-identical kernels compete (``fused32`` trades accuracy and stays
  opt-in), so auto-selection can never change results.
* :class:`TuningState` -- the aggregate the
  :class:`~repro.parallel.ParallelCoordinator` owns and threads through
  ``make_backend`` into every backend, and whose :meth:`snapshot` lands
  in ``SessionResult.provenance["tuning"]``.

Every decision here only moves shard boundaries, routes a batch inline
vs sharded, or picks among bit-identical kernels.  The batched kernel
is elementwise over the batch axis (shard-invariant), so results are
bit-identical with tuning on or off -- the parity suites lock this.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.parallel.backend import shard_bounds

__all__ = [
    "AUTOTUNE_ENV",
    "BreakEvenCalibrator",
    "ShardPlanner",
    "ThroughputModel",
    "TuningState",
    "default_autotune",
    "select_kernel",
]

#: Environment variable enabling autotuning when the spec leaves
#: ``autotune`` unset (``1``/``true``/``on``/``yes``).
AUTOTUNE_ENV = "REPRO_AUTOTUNE"


def default_autotune() -> bool:
    """Whether ``$REPRO_AUTOTUNE`` asks for adaptive execution when the
    spec leaves ``autotune`` unset."""
    value = os.environ.get(AUTOTUNE_ENV)
    if value is None:
        return False
    return value.strip().lower() in ("1", "true", "on", "yes")

#: EWMA smoothing factor: high enough to follow a node that slows down
#: mid-run, low enough that one noisy shard cannot flip the plan.
DEFAULT_ALPHA = 0.4

#: Calibration probes per transport before the crossover is frozen.
CALIBRATION_PROBES = 6


class ThroughputModel:
    """Per-worker/per-node EWMA of observed rows per second.

    Observations arrive from the backends' result-gather loops: each
    completed shard reports ``(rows, elapsed_s)`` for the worker slot
    that ran it.  Rates are keyed ``(transport, key)`` where ``key`` is
    the stable worker index or node slot, so the model survives worker
    respawns and degradation-ladder rebuilds that reuse slots.
    """

    def __init__(self, alpha: float = DEFAULT_ALPHA) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = float(alpha)
        self._rates: Dict[Tuple[str, object], float] = {}
        self._counts: Dict[Tuple[str, object], int] = {}
        self._lock = threading.Lock()

    def observe(self, transport: str, key, rows: int,
                elapsed_s: float) -> None:
        """Fold one completed shard into the EWMA for ``key``."""
        if rows <= 0 or elapsed_s <= 0.0:
            return
        rate = rows / elapsed_s
        slot = (transport, key)
        with self._lock:
            prev = self._rates.get(slot)
            if prev is None:
                self._rates[slot] = rate
            else:
                self._rates[slot] = (self.alpha * rate
                                     + (1.0 - self.alpha) * prev)
            self._counts[slot] = self._counts.get(slot, 0) + 1

    def rate(self, transport: str, key) -> Optional[float]:
        """Smoothed rows/sec for ``key``, or None before any sample."""
        with self._lock:
            return self._rates.get((transport, key))

    def observations(self, transport: str, key) -> int:
        with self._lock:
            return self._counts.get((transport, key), 0)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """``{transport: {str(key): rows_per_sec}}`` for provenance."""
        with self._lock:
            out: Dict[str, Dict[str, float]] = {}
            for (transport, key), rate in self._rates.items():
                out.setdefault(transport, {})[str(key)] = rate
            return out


class ShardPlanner:
    """Sizes initial shards proportional to measured throughput.

    :meth:`plan` returns ``(bounds, owners)`` covering the batch
    exactly: contiguous ``(lo, hi)`` spans plus the worker/node key that
    should run each span first (work stealing may still move it).  When
    any key lacks a rate -- the first batches, a fresh fleet -- or the
    batch is too small to split meaningfully, the plan falls back to
    the static uniform round-robin the backends used before tuning
    existed, bit-identical schedule included.
    """

    def __init__(self, throughput: ThroughputModel) -> None:
        self.throughput = throughput

    def _uniform(self, batch: int, keys: Sequence, chunks_per_key: int):
        bounds = shard_bounds(batch, len(keys) * chunks_per_key)
        owners = [keys[i % len(keys)] for i in range(len(bounds))]
        return bounds, owners

    def plan(self, batch: int, transport: str, keys: Sequence,
             chunks_per_key: int = 1):
        """Partition ``batch`` rows over ``keys`` by measured rate.

        Each key's allocation is the floor of its proportional share;
        leftover rows go to the largest fractional remainders (index
        order breaks ties, so plans are deterministic).  Each key's
        span is then sub-split into ``chunks_per_key`` shards -- the
        distributed backend's stealing granularity.
        """
        if batch < 1 or not keys:
            raise ValueError("plan needs a positive batch and >= 1 key")
        chunks_per_key = max(1, int(chunks_per_key))
        width = len(keys) * chunks_per_key
        rates = [self.throughput.rate(transport, key) for key in keys]
        if (batch < width or len(keys) == 1
                or any(r is None or r <= 0.0 or not np.isfinite(r)
                       for r in rates)):
            return self._uniform(batch, keys, chunks_per_key)
        total = sum(rates)
        raw = [batch * rate / total for rate in rates]
        alloc = [int(share) for share in raw]
        remainder = batch - sum(alloc)
        order = sorted(range(len(keys)),
                       key=lambda i: (-(raw[i] - alloc[i]), i))
        for i in order[:remainder]:
            alloc[i] += 1
        bounds: List[Tuple[int, int]] = []
        owners: List = []
        lo = 0
        for key, rows in zip(keys, alloc):
            if rows <= 0:
                continue
            for sub_lo, sub_hi in shard_bounds(rows, chunks_per_key):
                bounds.append((lo + sub_lo, lo + sub_hi))
                owners.append(key)
            lo += rows
        return bounds, owners


class BreakEvenCalibrator:
    """Converges on a per-transport inline-vs-shard crossover at runtime.

    With ``dispatch_min_batch="auto"``, the first
    :data:`CALIBRATION_PROBES` batches per transport alternate between
    inline and sharded execution (both bit-identical -- only wall clock
    differs) while their per-row times are recorded.  Whenever both
    modes have been timed at the same batch size, the faster one moves
    a bound: ``lo`` rises to the largest batch inline won, ``hi`` falls
    to the smallest batch sharding won.  After the probe budget the
    threshold freezes at ``hi`` (or ``2 * lo`` when sharding never won,
    or the static default when nothing conclusive was seen).
    """

    def __init__(self, probes: int = CALIBRATION_PROBES) -> None:
        self.probes = max(1, int(probes))
        self._lock = threading.Lock()
        self._state: Dict[str, dict] = {}

    def _transport(self, transport: str) -> dict:
        state = self._state.get(transport)
        if state is None:
            state = {"used": 0, "samples": {}, "lo": 0, "hi": None,
                     "threshold": None}
            self._state[transport] = state
        return state

    def route_inline(self, transport: str, batch: int,
                     static_threshold: int) -> bool:
        """Whether this batch should run inline (True) or sharded."""
        with self._lock:
            state = self._transport(transport)
            if state["threshold"] is not None:
                return batch < state["threshold"]
            if state["used"] >= self.probes:
                self._freeze(state, static_threshold)
                return batch < state["threshold"]
            state["used"] += 1
            # Odd probes run inline, even probes shard: both modes get
            # timed at whatever batch sizes the search actually sends.
            return state["used"] % 2 == 1

    def _freeze(self, state: dict, static_threshold: int) -> None:
        if state["hi"] is not None:
            state["threshold"] = state["hi"]
        elif state["lo"] > 0:
            state["threshold"] = 2 * state["lo"]
        else:
            state["threshold"] = max(0, int(static_threshold))

    def observe(self, transport: str, inline: bool, batch: int,
                elapsed_s: float) -> None:
        """Record one timed batch and update the crossover bounds."""
        if batch <= 0 or elapsed_s <= 0.0:
            return
        per_row = elapsed_s / batch
        with self._lock:
            state = self._transport(transport)
            if state["threshold"] is not None:
                return
            sample = state["samples"].setdefault(batch, {})
            mode = "inline" if inline else "sharded"
            # Keep the best observed time per mode: scheduling noise
            # only ever makes a mode look slower than it is.
            if mode not in sample or per_row < sample[mode]:
                sample[mode] = per_row
            if "inline" in sample and "sharded" in sample:
                if sample["inline"] <= sample["sharded"]:
                    state["lo"] = max(state["lo"], batch)
                elif state["hi"] is None or batch < state["hi"]:
                    state["hi"] = batch

    def threshold(self, transport: str) -> Optional[int]:
        with self._lock:
            state = self._state.get(transport)
            return None if state is None else state["threshold"]

    def snapshot(self) -> Dict[str, dict]:
        with self._lock:
            return {transport: {"threshold": state["threshold"],
                                "probes": state["used"],
                                "inline_won_at": state["lo"],
                                "sharded_won_at": state["hi"]}
                    for transport, state in self._state.items()}


# ----------------------------------------------------------------------
# Kernel auto-selection
# ----------------------------------------------------------------------
#: Only the bit-identical kernels compete under ``kernel="auto"``;
#: ``fused32`` trades documented float32 error for speed and must stay
#: an explicit opt-in.
AUTO_KERNEL_CANDIDATES: Tuple[str, ...] = ("batched", "fused")

_KERNEL_CACHE: Dict[object, Tuple[str, Dict[str, float]]] = {}
_KERNEL_CACHE_LOCK = threading.Lock()


def select_kernel(hw, table, cache_key=None, probe_rows: int = 2048,
                  repeats: int = 3) -> Tuple[str, Dict[str, float]]:
    """Pick the faster bit-identical kernel for ``(hw, table)``.

    Runs a one-shot micro-probe: a synthetic tiled batch of about
    ``probe_rows`` design points through each candidate, best of
    ``repeats`` timings.  The choice is cached per ``cache_key``
    (typically the session's (model, platform) identity) so repeated
    sessions in one process pay the probe once.

    Returns ``(kernel_name, {kernel: best_seconds})`` -- the timings go
    into ``provenance["tuning"]["kernel"]``.
    """
    if cache_key is not None:
        with _KERNEL_CACHE_LOCK:
            cached = _KERNEL_CACHE.get(cache_key)
        if cached is not None:
            return cached
    from repro.costmodel.batched import evaluate_with_kernel

    num_layers = len(table)
    population = max(2, probe_rows // num_layers)
    n = population * num_layers
    layer_idx = np.tile(np.arange(num_layers, dtype=np.int64), population)
    rng = np.arange(n, dtype=np.int64)
    pes = (rng % 64) + 1
    l1_bytes = ((rng % 32) + 1) * 16
    style_idx = np.zeros(n, dtype=np.int64)
    timings: Dict[str, float] = {}
    for kernel in AUTO_KERNEL_CANDIDATES:
        # Warm once outside the clock (program compilation, allocator).
        evaluate_with_kernel(kernel, hw, table, layer_idx, style_idx,
                             pes, l1_bytes)
        best = float("inf")
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            evaluate_with_kernel(kernel, hw, table, layer_idx, style_idx,
                                 pes, l1_bytes)
            best = min(best, time.perf_counter() - start)
        timings[kernel] = best
    selected = min(AUTO_KERNEL_CANDIDATES, key=lambda k: timings[k])
    result = (selected, timings)
    if cache_key is not None:
        with _KERNEL_CACHE_LOCK:
            _KERNEL_CACHE[cache_key] = result
    return result


class TuningState:
    """The shared adaptive-execution state of one coordinator.

    One instance is threaded through ``make_backend`` into every
    backend a coordinator builds -- including the rebuilt inner backend
    after a :class:`~repro.parallel.backend.ResilientBackend` ladder
    rung -- so measured rates and the calibrated crossover survive
    respawns and downshifts.

    ``plan_shards`` gates the throughput-proportional
    :class:`ShardPlanner` (the ``autotune`` knob); ``auto_dispatch``
    gates the :class:`BreakEvenCalibrator`
    (``dispatch_min_batch="auto"``).  Either may be on without the
    other.
    """

    def __init__(self, plan_shards: bool = True,
                 auto_dispatch: bool = False,
                 alpha: float = DEFAULT_ALPHA) -> None:
        self.plan_shards = bool(plan_shards)
        self.auto_dispatch = bool(auto_dispatch)
        self.throughput = ThroughputModel(alpha=alpha)
        self.planner = ShardPlanner(self.throughput)
        self.calibrator = BreakEvenCalibrator()
        #: ``{"selected": ..., "timings": {...}}`` once a session probes
        #: ``kernel="auto"``.
        self.kernel: Optional[dict] = None
        self._lock = threading.Lock()
        self._last_plan: Optional[dict] = None
        self._planned_batches = 0
        self._adaptive_plans = 0

    # -- planning ------------------------------------------------------
    def plan(self, batch: int, transport: str, keys: Sequence,
             chunks_per_key: int = 1):
        """Shard ``batch`` over ``keys``; records the plan for provenance."""
        bounds, owners = self.planner.plan(batch, transport, keys,
                                           chunks_per_key)
        uniform = self.planner._uniform(batch, keys, chunks_per_key)
        adaptive = (bounds, owners) != uniform
        with self._lock:
            self._planned_batches += 1
            self._adaptive_plans += int(adaptive)
            self._last_plan = {
                "transport": transport,
                "batch": batch,
                "adaptive": adaptive,
                "shard_rows": [hi - lo for lo, hi in bounds],
                "owners": [str(key) for key in owners],
            }
        return bounds, owners

    # -- shard timing --------------------------------------------------
    def observe(self, transport: str, key, rows: int,
                elapsed_s: float) -> None:
        self.throughput.observe(transport, key, rows, elapsed_s)

    # -- break-even calibration ----------------------------------------
    def route_inline(self, transport: str, batch: int,
                     static_threshold: int) -> bool:
        if not self.auto_dispatch:
            return batch < static_threshold
        return self.calibrator.route_inline(transport, batch,
                                            static_threshold)

    def observe_route(self, transport: str, inline: bool, batch: int,
                      elapsed_s: float) -> None:
        if self.auto_dispatch:
            self.calibrator.observe(transport, inline, batch, elapsed_s)

    # -- provenance ----------------------------------------------------
    def snapshot(self) -> dict:
        """The provenance record (``provenance["tuning"]``)."""
        with self._lock:
            last_plan = (dict(self._last_plan)
                         if self._last_plan is not None else None)
            planned = self._planned_batches
            adaptive = self._adaptive_plans
        return {
            "plan_shards": self.plan_shards,
            "auto_dispatch": self.auto_dispatch,
            "rates": self.throughput.snapshot(),
            "plan": last_plan,
            "planned_batches": planned,
            "adaptive_plans": adaptive,
            "break_even": self.calibrator.snapshot(),
            "kernel": self.kernel,
        }
