"""Deterministic fault injection for the parallel execution stack.

A :class:`FaultPlan` is a seeded, JSON-serializable script of
infrastructure failures -- worker kills, injected kernel exceptions,
artificial delays -- keyed by ``(batch_idx, worker_id)``, where
``batch_idx`` is the backend's 0-based counter of *sharded* batches
(``ProcessBackend._next_task``; inline small-batch evaluations do not
advance it).  Because the script, not luck, decides when a worker dies,
every recovery path in :class:`~repro.parallel.backend.ProcessBackend`
is exercised by ordinary pytest cases, and a chaos run is exactly
reproducible from its plan.

Fault kinds:

* ``kill_worker`` -- the worker ``os._exit``\\ s before touching the
  batch the moment it receives the matching shard.  Entries are a
  *multiset*: the coordinator prunes one occurrence per observed death
  before respawning, so ``[[3, 0], [3, 0]]`` kills worker 0's
  replacement too (the way to exhaust a retry budget on purpose).
* ``raise_in_kernel`` -- the worker raises
  :class:`~repro.parallel.errors.FaultInjected` instead of running the
  kernel, exactly once per entry (the worker remembers what it fired),
  so the coordinator's re-dispatch succeeds.  On the thread backend the
  entry fires per ``(batch_idx, shard_idx)`` at dispatch time -- the
  hook that lets chaos reach the degradation ladder's middle rung.
* ``delay_s`` -- ``[batch_idx, worker_id, seconds]``: the worker sleeps
  before evaluating, the lever for deadline/timeout tests.  Pruned like
  kills when a hung worker is terminated.
* ``throttle_s`` -- ``[worker_id, seconds_per_row]``: the worker sleeps
  ``seconds_per_row * shard_rows`` on **every** shard it evaluates -- a
  persistent straggler whose slowness scales with the work it is given,
  the lever for heterogeneous-fleet tests and benches (work stealing
  and the adaptive shard planner both exist to route around exactly
  this).  Charged to the worker's timing echo so the throughput model
  sees it.

Plans reach workers through ``$REPRO_FAULTS`` (see :func:`from_env`:
an inline JSON document, a ``seed:N`` generator shorthand, or a file
path) or explicitly via ``ProcessBackend(fault_plan=...)`` /
``ParallelCoordinator(fault_plan=...)``; the ``chaos`` executor is the
process backend with a plan always attached.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["FaultPlan"]

#: Horizon (in sharded batches) the seeded generator scatters faults
#: over; searches shorter than this still see the early entries.
DEFAULT_HORIZON = 12


def _pairs(entries, name) -> List[Tuple[int, int]]:
    out = []
    for entry in entries:
        if len(entry) != 2:
            raise ValueError(
                f"{name} entries must be [batch_idx, worker_id] pairs, "
                f"got {entry!r}")
        batch_idx, worker_id = int(entry[0]), int(entry[1])
        if batch_idx < 0 or worker_id < 0:
            raise ValueError(
                f"{name} entries must be non-negative, got {entry!r}")
        out.append((batch_idx, worker_id))
    return out


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic script of infrastructure faults.

    Attributes:
        kill_worker: ``(batch_idx, worker_id)`` multiset -- worker
            exits hard on receipt of that batch's shard.
        raise_in_kernel: ``(batch_idx, worker_id)`` pairs -- worker
            raises :class:`~repro.parallel.errors.FaultInjected` once.
        delay_s: ``(batch_idx, worker_id, seconds)`` -- worker sleeps
            before evaluating.
        throttle_s: ``(worker_id, seconds_per_row)`` -- worker sleeps
            proportionally to every shard it runs (a persistent
            straggler).
        seed: The seed :meth:`seeded` generated this plan from (``None``
            for hand-written plans); carried for provenance only.
    """

    kill_worker: Tuple[Tuple[int, int], ...] = ()
    raise_in_kernel: Tuple[Tuple[int, int], ...] = ()
    delay_s: Tuple[Tuple[int, int, float], ...] = ()
    throttle_s: Tuple[Tuple[int, float], ...] = ()
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "kill_worker",
            tuple(_pairs(self.kill_worker, "kill_worker")))
        object.__setattr__(
            self, "raise_in_kernel",
            tuple(_pairs(self.raise_in_kernel, "raise_in_kernel")))
        delays = []
        for entry in self.delay_s:
            if len(entry) != 3:
                raise ValueError(
                    "delay_s entries must be [batch_idx, worker_id, "
                    f"seconds] triples, got {entry!r}")
            batch_idx, worker_id, seconds = (int(entry[0]), int(entry[1]),
                                             float(entry[2]))
            if batch_idx < 0 or worker_id < 0 or seconds < 0:
                raise ValueError(
                    f"delay_s entries must be non-negative, got {entry!r}")
            delays.append((batch_idx, worker_id, seconds))
        object.__setattr__(self, "delay_s", tuple(delays))
        throttles = []
        for entry in self.throttle_s:
            if len(entry) != 2:
                raise ValueError(
                    "throttle_s entries must be [worker_id, "
                    f"seconds_per_row] pairs, got {entry!r}")
            worker_id, per_row = int(entry[0]), float(entry[1])
            if worker_id < 0 or per_row < 0:
                raise ValueError(
                    f"throttle_s entries must be non-negative, got "
                    f"{entry!r}")
            throttles.append((worker_id, per_row))
        object.__setattr__(self, "throttle_s", tuple(throttles))

    # ------------------------------------------------------------------
    @property
    def empty(self) -> bool:
        return not (self.kill_worker or self.raise_in_kernel
                    or self.delay_s or self.throttle_s)

    def kills_for(self, worker_id: int) -> List[int]:
        """Batch indices (with multiplicity) at which ``worker_id``
        should die."""
        return [batch for batch, worker in self.kill_worker
                if worker == worker_id]

    def raises_for(self, worker_id: int) -> List[int]:
        return [batch for batch, worker in self.raise_in_kernel
                if worker == worker_id]

    def delays_for(self, worker_id: int) -> List[Tuple[int, float]]:
        return [(batch, seconds)
                for batch, worker, seconds in self.delay_s
                if worker == worker_id]

    def throttle_for(self, worker_id: int) -> float:
        """Seconds of sleep per shard row for ``worker_id`` (0.0 for a
        healthy worker; multiple entries stack)."""
        return sum(per_row for worker, per_row in self.throttle_s
                   if worker == worker_id)

    # ------------------------------------------------------------------
    @classmethod
    def seeded(cls, seed: int, workers: int = 2,
               horizon: int = DEFAULT_HORIZON, kills: int = 2,
               raises: int = 1, delays: int = 0,
               delay_seconds: float = 0.05) -> "FaultPlan":
        """A reproducible random plan: ``kills`` worker deaths,
        ``raises`` injected exceptions, and ``delays`` sleeps scattered
        over the first ``horizon`` sharded batches of ``workers``
        workers.  Same arguments, same plan -- the CI chaos leg runs one
        of these (``$REPRO_FAULTS=seed:N``)."""
        rng = random.Random(seed)

        def scatter(count):
            return tuple(sorted(
                (rng.randrange(horizon), rng.randrange(workers))
                for _ in range(count)))

        kill = scatter(kills)
        raise_ = scatter(raises)
        delay = tuple((batch, worker, delay_seconds)
                      for batch, worker in scatter(delays))
        return cls(kill_worker=kill, raise_in_kernel=raise_,
                   delay_s=delay, seed=seed)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-safe dict fully reconstructing this plan."""
        return {
            "kill_worker": [list(entry) for entry in self.kill_worker],
            "raise_in_kernel": [list(entry)
                                for entry in self.raise_in_kernel],
            "delay_s": [list(entry) for entry in self.delay_s],
            "throttle_s": [list(entry) for entry in self.throttle_s],
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        known = {"kill_worker", "raise_in_kernel", "delay_s",
                 "throttle_s", "seed"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        return cls(
            kill_worker=tuple(tuple(e) for e in data.get("kill_worker", ())),
            raise_in_kernel=tuple(
                tuple(e) for e in data.get("raise_in_kernel", ())),
            delay_s=tuple(tuple(e) for e in data.get("delay_s", ())),
            throttle_s=tuple(tuple(e)
                             for e in data.get("throttle_s", ())),
            seed=data.get("seed"),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, document: str) -> "FaultPlan":
        return cls.from_dict(json.loads(document))

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, value: str) -> "FaultPlan":
        """Parse a ``$REPRO_FAULTS`` value: an inline JSON document
        (``{...}``), the shorthand ``seed:N`` for :meth:`seeded`, or a
        path to a JSON file."""
        value = value.strip()
        if value.startswith("{"):
            return cls.from_json(value)
        if value.startswith("seed:"):
            return cls.seeded(int(value[len("seed:"):]))
        with open(value) as handle:
            return cls.from_json(handle.read())

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan ``$REPRO_FAULTS`` names, or ``None`` when unset/empty
        (the production default: no faults, zero overhead)."""
        value = os.environ.get("REPRO_FAULTS")
        if not value:
            return None
        return cls.parse(value)
