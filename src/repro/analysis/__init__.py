"""Standalone analyses supporting the paper's design arguments."""

from repro.analysis.critic_study import CriticStudy, CriticStudyResult

__all__ = ["CriticStudy", "CriticStudyResult"]
