"""The critic-capacity experiment behind Fig. 6 (Section IV-C3).

Why does actor-only REINFORCE beat the actor-critic family here?  The paper
extracts the critic network and trains it standalone to regress the reward
(per-layer latency of MobileNet-V2) from the state, sweeping the training
set size up to the maximum number of samples a critic could ever see in an
``Eps = 5000`` run.  The RMSE refuses to converge to a useful value: the
HW-performance landscape is too discrete and irregular for the critic, and
a misled critic misguides the policy.

This module reproduces that experiment against our cost model: states are
(observation, action-pair) encodings, targets the per-layer latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.costmodel.estimator import CostModel
from repro.env.observation import ObservationEncoder
from repro.env.spaces import ActionSpace
from repro.models.layers import Layer
from repro.nn.autograd import Tensor, no_grad
from repro.nn.functional import mse_loss
from repro.nn.modules import MLP
from repro.nn.optim import Adam


@dataclass
class CriticStudyResult:
    """Learning curves per dataset size (the Fig. 6 series)."""

    dataset_sizes: List[int]
    train_rmse: Dict[int, List[float]] = field(default_factory=dict)
    test_rmse: Dict[int, List[float]] = field(default_factory=dict)

    def final_rmse(self, size: int) -> Tuple[float, float]:
        """(train, test) RMSE at the last epoch for a dataset size."""
        return self.train_rmse[size][-1], self.test_rmse[size][-1]

    def best_test_rmse(self) -> float:
        """The best test RMSE over all sizes (the paper quotes 5.3e4)."""
        return min(min(curve) for curve in self.test_rmse.values())


class CriticStudy:
    """Train critic MLPs to predict per-layer latency from the state.

    Args:
        layers: Workload whose per-layer latency is the regression target.
        dataflow: Style used for evaluation.
        cost_model: The estimator acting as ground truth.
        hidden_sizes: Critic architecture (the comparison agents' default).
        seed: RNG seed.
    """

    def __init__(self, layers: Sequence[Layer], dataflow: str = "dla",
                 cost_model: Optional[CostModel] = None,
                 space: Optional[ActionSpace] = None,
                 hidden_sizes: Sequence[int] = (64, 64),
                 seed: Optional[int] = None) -> None:
        self.layers = list(layers)
        self.dataflow = dataflow
        self.cost_model = cost_model or CostModel()
        self.space = space or ActionSpace.build(dataflow)
        self.hidden_sizes = tuple(hidden_sizes)
        self.rng = np.random.default_rng(seed)
        self.encoder = ObservationEncoder.for_model(self.layers, self.space)

    # ------------------------------------------------------------------
    def generate_dataset(self, size: int) -> Tuple[np.ndarray, np.ndarray]:
        """Random (state, reward) pairs: state = observation plus the
        normalized action pair, reward = that layer's latency."""
        n_levels = self.space.num_levels
        features = np.zeros((size, 12))
        targets = np.zeros(size)
        for i in range(size):
            layer_index = int(self.rng.integers(len(self.layers)))
            pe_idx = int(self.rng.integers(n_levels))
            buf_idx = int(self.rng.integers(n_levels))
            layer = self.layers[layer_index]
            observation = self.encoder.encode(layer, layer_index, None)
            action_enc = (
                2.0 * np.array([pe_idx, buf_idx]) / (n_levels - 1) - 1.0)
            features[i] = np.concatenate([observation, action_enc])
            pes, l1 = self.space.pe_levels[pe_idx], \
                self.space.buf_levels[buf_idx]
            report = self.cost_model.evaluate_layer(
                layer, self.dataflow, pes, l1)
            targets[i] = report.latency_cycles
        return features, targets

    def train_critic(self, features: np.ndarray, targets: np.ndarray,
                     epochs: int, batch_size: int = 256,
                     lr: float = 1e-3, test_fraction: float = 0.2,
                     ) -> Tuple[List[float], List[float]]:
        """Train one critic; returns (train RMSE, test RMSE) per epoch."""
        count = len(targets)
        split = max(1, int(count * (1.0 - test_fraction)))
        order = self.rng.permutation(count)
        train_idx, test_idx = order[:split], order[split:]
        critic = MLP([features.shape[1], *self.hidden_sizes, 1],
                     activation="relu", rng=self.rng)
        optimizer = Adam(critic.parameters(), lr=lr)
        # Standardize targets for optimization; report RMSE in cycles.
        mean, std = targets[train_idx].mean(), targets[train_idx].std() + 1e-9
        train_curve: List[float] = []
        test_curve: List[float] = []
        for _ in range(epochs):
            batch = self.rng.choice(train_idx,
                                    size=min(batch_size, len(train_idx)),
                                    replace=False)
            prediction = critic(Tensor(features[batch])).reshape(len(batch))
            loss = mse_loss(prediction,
                            Tensor((targets[batch] - mean) / std))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            train_curve.append(self._rmse(critic, features[train_idx],
                                          targets[train_idx], mean, std))
            test_curve.append(self._rmse(critic, features[test_idx],
                                         targets[test_idx], mean, std))
        return train_curve, test_curve

    @staticmethod
    def _rmse(critic: MLP, features: np.ndarray, targets: np.ndarray,
              mean: float, std: float) -> float:
        if len(targets) == 0:
            return float("nan")
        with no_grad():
            prediction = critic(Tensor(features)).numpy().reshape(-1)
        prediction = prediction * std + mean
        return float(np.sqrt(np.mean((prediction - targets) ** 2)))

    # ------------------------------------------------------------------
    def run(self, dataset_sizes: Sequence[int],
            epochs: int = 200) -> CriticStudyResult:
        """The full Fig. 6 sweep."""
        result = CriticStudyResult(dataset_sizes=list(dataset_sizes))
        for size in dataset_sizes:
            features, targets = self.generate_dataset(size)
            train_curve, test_curve = self.train_critic(
                features, targets, epochs=epochs)
            result.train_rmse[size] = train_curve
            result.test_rmse[size] = test_curve
        return result
