"""Observer protocol for :class:`~repro.search.session.SearchSession`.

A session drives one search method and reports its life cycle to a list of
observers::

    on_start(session)                     once, before the method runs
    on_step(step, cost, best_cost)        per budget unit consumed
    on_improvement(step, best_cost, best_assignments)
                                          whenever the feasible best improves
    on_warning(kind, detail)              structured mid-run warnings
                                          (e.g. backend degradation)
    on_finish(result)                     once, with the SessionResult
    on_teardown()                         once, on *every* exit path

``on_step`` fires per *episode* for episodic-RL methods and per
*design-point evaluation* for genome-space methods; for two-stage methods
it covers the observable global stage.  Returning ``True`` from
``on_step`` (or calling :meth:`SearchObserver.request_stop`) asks the
session to stop gracefully at the next step boundary: the best-so-far
solution is kept and the result is flagged ``stopped_early``.

This is the seam the process-parallel engine plugs into:
:class:`repro.parallel.ParallelCoordinator` is an observer that installs
an execution backend on the session's cost model in ``on_start`` and
shuts its workers down in ``on_teardown``.
"""

from __future__ import annotations

import sys
from typing import Optional, Tuple


class StopSearch(Exception):
    """Raised internally to unwind a method when an observer stops it."""


class SearchObserver:
    """Base observer: every hook is a no-op; subclass what you need."""

    def __init__(self) -> None:
        self._stop = False

    def request_stop(self) -> None:
        """Ask the session to stop at the next step boundary."""
        self._stop = True

    @property
    def stop_requested(self) -> bool:
        return self._stop

    def _begin_run(self) -> None:
        """Clear run-scoped state; called by the session before
        ``on_start`` so one observer instance can serve many runs.
        Subclasses with per-run counters extend this."""
        self._stop = False

    # ------------------------------------------------------------------
    def on_start(self, session) -> None:
        """Called once before the search method starts consuming budget."""

    def on_step(self, step: int, cost: Optional[float],
                best_cost: Optional[float]) -> Optional[bool]:
        """Called per budget unit; return ``True`` to request a stop.

        Args:
            step: 1-based count of budget units consumed so far.
            cost: This step's cost (``None`` when infeasible).
            best_cost: Best feasible cost so far (``None`` if none yet).
        """

    def on_improvement(self, step: int, best_cost: float,
                       best_assignments: Optional[Tuple]) -> None:
        """Called when a new best feasible design point is found."""

    def on_warning(self, kind: str, detail: dict) -> None:
        """Called on structured mid-run warnings the search survives.

        Today's only producer is the fault-tolerance layer:
        ``kind="backend-degraded"`` with ``detail`` naming the rungs
        (``{"from": "process", "to": "thread", "error": ...,
        "message": ...}``) when the degradation ladder downshifts.
        Results are unaffected (the batched kernel is pure), so the
        default is to ignore it.
        """

    def on_finish(self, result) -> None:
        """Called once with the finished
        :class:`~repro.search.session.SessionResult`."""

    def on_teardown(self) -> None:
        """Called once when the run ends -- *including* early stops and
        method exceptions (the session fires it from a ``finally``).
        Observers owning external resources (worker pools, files)
        release them here; ``on_finish`` only runs on success."""


class ProgressReporter(SearchObserver):
    """Print a one-line progress report every ``every`` steps."""

    def __init__(self, every: int = 50, stream=None) -> None:
        super().__init__()
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = every
        self.stream = stream if stream is not None else sys.stderr

    def on_start(self, session) -> None:
        from repro.objectives import objective_label

        spec = session.spec
        print(f"[{spec.method}] searching {spec.model} "
              f"({objective_label(spec.objective)}, "
              f"{spec.constraint_kind}:{spec.platform}, "
              f"budget {spec.budget})", file=self.stream)

    def on_step(self, step, cost, best_cost) -> None:
        if step % self.every == 0:
            shown = "inf" if best_cost is None else f"{best_cost:.4E}"
            print(f"[step {step}] best {shown}", file=self.stream)

    def on_finish(self, result) -> None:
        print(f"[done] {result.summary()}", file=self.stream)


class EarlyStopping(SearchObserver):
    """Stop when progress stalls or a target cost is reached.

    Args:
        patience: Stop after this many steps without a new feasible best
            (``None`` disables the stall criterion).
        target_cost: Stop as soon as the best feasible cost is <= this.
        min_steps: Never stop before this many steps.
    """

    def __init__(self, patience: Optional[int] = None,
                 target_cost: Optional[float] = None,
                 min_steps: int = 0) -> None:
        super().__init__()
        if patience is not None and patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.target_cost = target_cost
        self.min_steps = min_steps
        self._last_improvement = 0
        self.stopped_at: Optional[int] = None

    def _begin_run(self) -> None:
        super()._begin_run()
        self._last_improvement = 0
        self.stopped_at = None

    def on_improvement(self, step, best_cost, best_assignments) -> None:
        self._last_improvement = step

    def on_step(self, step, cost, best_cost) -> bool:
        if step < self.min_steps:
            return False
        stalled = (self.patience is not None
                   and step - self._last_improvement >= self.patience)
        reached = (self.target_cost is not None and best_cost is not None
                   and best_cost <= self.target_cost)
        if stalled or reached:
            self.stopped_at = step
            return True
        return False


class CheckpointHook(SearchObserver):
    """Persist the best-so-far solution to JSON on every improvement.

    Writes ``{step, best_cost, best_assignments, spec}`` to ``path``
    with a write-to-temp + ``fsync`` + ``os.replace`` protocol, so a
    reader (or a resume after a crash) only ever sees a complete
    checkpoint -- never a torn half-write, even if the process dies
    mid-dump.  The spec is captured from the session at ``on_start``,
    which is what makes the file self-contained: :meth:`resume` rebuilds
    the session from it and replays the search to the bit-identical
    final result (every method is deterministic in its spec'd seed).

    Args:
        path: Destination file.
        every_improvements: Write only every Nth improvement.
    """

    def __init__(self, path, every_improvements: int = 1) -> None:
        super().__init__()
        if every_improvements < 1:
            raise ValueError("every_improvements must be >= 1")
        self.path = path
        self.every_improvements = every_improvements
        self._improvements = 0
        self._spec_dict: Optional[dict] = None

    def _begin_run(self) -> None:
        super()._begin_run()
        self._improvements = 0

    def on_start(self, session) -> None:
        spec = getattr(session, "spec", None)
        self._spec_dict = spec.to_dict() if spec is not None else None

    def on_improvement(self, step, best_cost, best_assignments) -> None:
        self._improvements += 1
        if self._improvements % self.every_improvements:
            return
        document = {
            "step": step,
            "best_cost": best_cost,
            "best_assignments": (
                [list(a) for a in best_assignments]
                if best_assignments is not None else None),
            "spec": self._spec_dict,
        }
        self._write_atomic(document)

    def _write_atomic(self, document: dict) -> None:
        import json
        import os

        path = os.fspath(self.path)
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)

    # ------------------------------------------------------------------
    @staticmethod
    def resume(path, callbacks=()):
        """Resume a crashed search from its checkpoint file.

        Loads the frozen spec out of ``path`` and re-runs the session
        from scratch.  Because every registered method is a
        deterministic function of its spec (seed included), the replay's
        final :class:`~repro.search.session.SessionResult` is
        bit-identical to what the killed run would have produced -- the
        checkpoint's ``best_cost`` is a progress floor the replay is
        guaranteed to reach or beat.  Raises ``ValueError`` for
        checkpoints written without a spec (pre-1.5 files or sessions
        without one).
        """
        import json

        with open(path) as handle:
            document = json.load(handle)
        spec_dict = document.get("spec")
        if spec_dict is None:
            raise ValueError(
                f"checkpoint {path!r} carries no spec; it cannot seed a "
                f"resume (re-run the original SearchSpec instead)")
        from repro.search.session import SearchSession
        from repro.search.spec import SearchSpec

        spec = SearchSpec.from_dict(spec_dict)
        return SearchSession(spec).run(callbacks=list(callbacks))
