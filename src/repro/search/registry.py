"""One global registry for every search method in the repository.

The paper compares three incompatible families -- episodic RL agents that
drive :class:`~repro.env.environment.HWAssignmentEnv`, genome-space
optimizers that consume a :class:`~repro.core.evaluator.DesignPointEvaluator`
budget, and the two-stage ConfuciuX pipeline.  This module names them all
in one table with capability metadata, so harnesses (the CLI, the
comparison grids, :class:`~repro.search.session.SearchSession`) enumerate
and construct methods uniformly instead of hand-rolling per-family glue.

Seed contract
-------------
Every registered factory MUST accept ``seed`` as a keyword argument where
``seed=None`` is valid, and derive all of its randomness from
``np.random.default_rng(seed)`` (one generator per constructed method).
This is the single seeding spec for the repository: equal
``(spec, seed)`` pairs produce bit-identical searches, and ``seed=None``
draws fresh OS entropy.

Registering a new method::

    from repro.search import register_method

    register_method("my-opt", MyOptimizer, kind="genome", batchable=True)

``factory`` may be the method class itself (constructed as
``factory(seed=seed, **options)``) or any callable with that signature.
Once registered the method appears in ``python -m repro methods``, is
accepted by ``repro.explore(method="my-opt")``, and joins the Table IV/V
comparison grids automatically.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: The three method families (``MethodInfo.kind``).
KIND_EPISODIC = "episodic-rl"   # .search(env, episodes)
KIND_GENOME = "genome"          # .search(evaluator, evaluations)
KIND_TWO_STAGE = "two-stage"    # global RL stage + local fine-tune stage

KINDS = (KIND_EPISODIC, KIND_GENOME, KIND_TWO_STAGE)


@dataclass(frozen=True)
class MethodInfo:
    """Registry entry: how to build a method plus what it can do.

    Attributes:
        name: Unique registry key (the CLI/table column name).
        factory: ``factory(seed=None, **options)`` -> method instance.
        kind: One of :data:`KINDS` -- decides which run protocol the
            session uses.
        batchable: The method scores candidate sets through the batched
            population evaluator (PERFORMANCE.md fast path), which also
            means an installed parallel backend shards its evaluations
            across workers; the determinism suite
            (``tests/test_parallel_parity.py``) keys on this flag.
        supports_finetune: The method fine-tunes from a seed design point
            (stage-2 role) rather than searching from scratch.
        variant_of: Name of the base method this is an ablation/variant
            of; variants are excluded from the paper's comparison grids.
        description: One-line summary for ``python -m repro methods``.
        runner: Optional override for how a session drives the method;
            ``None`` selects the default runner for ``kind``.  Signature:
            ``runner(info, context) -> SearchResult``.
    """

    name: str
    factory: Callable
    kind: str
    batchable: bool = False
    supports_finetune: bool = False
    variant_of: Optional[str] = None
    description: str = ""
    runner: Optional[Callable] = field(default=None, compare=False)


_REGISTRY: Dict[str, MethodInfo] = {}


def register_method(name: str, factory: Callable, *, kind: str,
                    batchable: bool = False, supports_finetune: bool = False,
                    variant_of: Optional[str] = None, description: str = "",
                    runner: Optional[Callable] = None,
                    overwrite: bool = False) -> MethodInfo:
    """Register a search method under ``name``; returns its entry.

    Raises:
        ValueError: on an unknown ``kind`` or a duplicate ``name``
            (unless ``overwrite=True``).
    """
    if kind not in KINDS:
        raise ValueError(f"kind must be one of {KINDS}, got {kind!r}")
    if not overwrite and name in _REGISTRY:
        raise ValueError(
            f"method {name!r} is already registered; "
            f"pass overwrite=True to replace it")
    info = MethodInfo(name=name, factory=factory, kind=kind,
                      batchable=batchable,
                      supports_finetune=supports_finetune,
                      variant_of=variant_of, description=description,
                      runner=runner)
    _REGISTRY[name] = info
    return info


def unregister_method(name: str) -> None:
    """Remove ``name`` from the registry (primarily for tests)."""
    _REGISTRY.pop(name, None)


def get_method(name: str) -> MethodInfo:
    """Look up one method, failing fast on typos."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown method {name!r}; available: "
            f"{', '.join(sorted(_REGISTRY))}") from None


def list_methods(kind: Optional[str] = None,
                 include_variants: bool = True) -> List[MethodInfo]:
    """Registry entries in registration order, optionally filtered."""
    return [info for info in _REGISTRY.values()
            if (kind is None or info.kind == kind)
            and (include_variants or info.variant_of is None)]


def method_names(kind: Optional[str] = None,
                 include_variants: bool = True) -> List[str]:
    """Registered names in registration order, optionally filtered."""
    return [info.name for info in list_methods(kind, include_variants)]


# ----------------------------------------------------------------------
# Built-in registrations.
def _construct(cls, seed=None, **options):
    """The canonical factory: ``cls(seed=seed, **options)``."""
    return cls(seed=seed, **options)


def _confuciux_factory(seed=None, **options):
    """Deferred ConfuciuX import keeps the package import graph acyclic;
    the session's two-stage runner builds the pipeline itself, so this
    factory returns the class partially bound to its options."""
    from repro.core.confuciux import ConfuciuX

    return functools.partial(ConfuciuX, seed=seed, **options)


def _local_ga_runner(info, context):
    """Late-bound session runner (breaks the registry<->session cycle)."""
    from repro.search.session import run_local_ga

    return run_local_ga(info, context)


def _register_builtins() -> None:
    """Absorb every search method the repository ships into the registry."""
    from repro.ga.local_ga import LocalGA
    from repro.optim import BASELINE_OPTIMIZERS
    from repro.rl import RL_ALGORITHMS

    baseline_blurbs = {
        "grid": "strided exhaustive sweep of the level grid",
        "random": "uniform random sampling of the level grid",
        "sa": "simulated annealing over level genomes",
        "ga": "conventional genetic algorithm over level genomes",
        "bayesian": "GP-lite Bayesian optimization with EI acquisition",
    }
    for name, cls in BASELINE_OPTIMIZERS.items():
        register_method(
            name, functools.partial(_construct, cls), kind=KIND_GENOME,
            batchable=True, description=baseline_blurbs.get(name, ""))

    rl_blurbs = {
        "reinforce": "Con'X(global): actor-only policy gradient, LSTM",
        "a2c": "advantage actor-critic",
        "acktr": "actor-critic with Kronecker-factored trust region",
        "ppo2": "clipped-objective proximal policy optimization",
        "ddpg": "deep deterministic policy gradient (box actions)",
        "td3": "twin-delayed DDPG (box actions)",
        "sac": "soft actor-critic (box actions)",
    }
    for name, cls in RL_ALGORITHMS.items():
        register_method(
            name, functools.partial(_construct, cls), kind=KIND_EPISODIC,
            description=rl_blurbs.get(name, ""))
    register_method(
        "reinforce-mlp",
        functools.partial(_construct, RL_ALGORITHMS["reinforce"],
                          policy="mlp"),
        kind=KIND_EPISODIC, variant_of="reinforce",
        description="Table IX ablation: REINFORCE with an MLP policy")

    from repro.optim.pareto_ga import ParetoGA

    register_method(
        "pareto-ga", functools.partial(_construct, ParetoGA),
        kind=KIND_GENOME, batchable=True,
        description="NSGA-II multi-objective search; returns a Pareto "
                    "front (pair with objective='multi:...')")
    register_method(
        "local-ga", functools.partial(_construct, LocalGA),
        kind=KIND_GENOME, batchable=True, supports_finetune=True,
        runner=_local_ga_runner,
        description="stage-2 local fine-tuning GA (raw integer space)")
    register_method(
        "confuciux", _confuciux_factory, kind=KIND_TWO_STAGE,
        batchable=True, supports_finetune=True,
        description="two-stage pipeline: REINFORCE global + local-GA "
                    "fine-tune")
    register_method(
        "confuciux-mlp",
        functools.partial(_confuciux_factory, policy="mlp"),
        kind=KIND_TWO_STAGE, batchable=True, supports_finetune=True,
        variant_of="confuciux",
        description="Table IX ablation: the two-stage pipeline with an "
                    "MLP policy")


_register_builtins()
