"""The unified search façade: one call convention for every method.

Pre-redesign the repository exposed three incompatible surfaces --
``GenomeOptimizer.search(evaluator, epochs)``, RL agents driving
``HWAssignmentEnv``, and the bespoke ``ConfuciuX.run(...)`` pipeline.
:class:`SearchSession` runs any registered method from one frozen
:class:`~repro.search.spec.SearchSpec`::

    from repro import SearchSession, SearchSpec

    spec = SearchSpec(model="mobilenet_v2", method="sa", budget=200, seed=0)
    result = SearchSession(spec).run(callbacks=[ProgressReporter()])
    result.save("run.json")

or, in one call::

    result = repro.explore(model="mobilenet_v2", method="sa", budget=200)

Sessions add *observation only*: with no callbacks the method runs on
exactly the same objects the legacy call paths built, so best costs are
bit-identical for fixed seeds.  With callbacks, the environment/evaluator
is wrapped in a forwarding proxy that fires the observer protocol and
implements graceful early stopping.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.serialization import (
    search_result_from_dict,
    search_result_to_dict,
)
from repro.costmodel.estimator import CostModel
from repro.experiments.tasks import TaskSpec
from repro.rl.common import SearchResult
from repro.search.callbacks import SearchObserver, StopSearch
from repro.search.registry import (
    KIND_EPISODIC,
    KIND_GENOME,
    KIND_TWO_STAGE,
    MethodInfo,
    get_method,
)
from repro.search.spec import SearchSpec


class _Tracker:
    """Observer multiplexer: counts steps, tracks the feasible best, and
    turns observer stop requests into :class:`StopSearch` unwinds."""

    def __init__(self, observers: Sequence[SearchObserver] = ()) -> None:
        self.observers = tuple(observers)
        self.steps = 0
        self.best_cost: Optional[float] = None
        self.best_assignments: Optional[Tuple] = None
        self.best_genome: Optional[List[int]] = None
        self.history: List[float] = []
        self.stopped = False

    @property
    def active(self) -> bool:
        """Whether instrumentation is needed at all."""
        return bool(self.observers)

    def record(self, cost: float, feasible: bool,
               assignments_fn: Optional[Callable[[], Tuple]] = None,
               genome: Optional[List[int]] = None,
               defer_stop: bool = False) -> None:
        """Account one budget unit and fire the observer protocol.

        ``assignments_fn`` is a thunk so the (decode) work is only paid
        when the step actually improves the best.  ``defer_stop`` delays
        the :class:`StopSearch` unwind to the next :meth:`check_stop`
        boundary (used by the env proxy to finish episodes cleanly).
        """
        self.steps += 1
        if feasible and (self.best_cost is None or cost < self.best_cost):
            self.best_cost = cost
            self.best_assignments = (tuple(assignments_fn())
                                     if assignments_fn else None)
            self.best_genome = list(genome) if genome is not None else None
            for observer in self.observers:
                observer.on_improvement(self.steps, cost,
                                        self.best_assignments)
        self.history.append(float("inf") if self.best_cost is None
                            else self.best_cost)
        for observer in self.observers:
            if observer.on_step(self.steps, cost if feasible else None,
                                self.best_cost):
                self.stopped = True
            if observer.stop_requested:
                self.stopped = True
        if self.stopped and not defer_stop:
            raise StopSearch

    def check_stop(self) -> None:
        """Unwind now if a stop was requested (episode boundaries)."""
        if self.stopped:
            raise StopSearch


class _ObservedEnv:
    """Forwarding proxy firing one observer step per finished episode."""

    def __init__(self, env, tracker: _Tracker) -> None:
        self._env = env
        self._tracker = tracker

    def __getattr__(self, name):
        return getattr(self._env, name)

    def reset(self):
        self._tracker.check_stop()
        return self._env.reset()

    def step(self, action):
        out = self._env.step(action)
        episode = out[3].get("episode")
        if episode is not None:
            self._tracker.record(
                episode.cost, episode.feasible,
                assignments_fn=lambda: episode.assignments,
                genome=episode.genome, defer_stop=True)
        return out

    def begin_plan(self):
        """Planned (deferred-scoring) episodes stay observable: the
        wrapped plan fires the same one-record-per-episode protocol at
        commit that :meth:`step` fires on the episode-ending step."""
        return _ObservedPlan(self._env.begin_plan(), self._tracker)


class _ObservedPlan:
    """Forwarding proxy around :class:`~repro.env.environment.EpisodePlan`
    recording the committed episode with the tracker."""

    def __init__(self, plan, tracker: _Tracker) -> None:
        self._plan = plan
        self._tracker = tracker

    def __getattr__(self, name):
        return getattr(self._plan, name)

    def step(self, action):
        return self._plan.step(action)

    def commit(self):
        rewards, episode = self._plan.commit()
        self._tracker.record(
            episode.cost, episode.feasible,
            assignments_fn=lambda: episode.assignments,
            genome=episode.genome, defer_stop=True)
        return rewards, episode


class _ObservedVectorEnv:
    """Forwarding proxy around
    :class:`~repro.env.vector.VectorHWAssignmentEnv` firing one observer
    step per episode finishing inside a wave."""

    def __init__(self, venv, tracker: _Tracker) -> None:
        self._venv = venv
        self._tracker = tracker

    def __getattr__(self, name):
        return getattr(self._venv, name)

    def reset(self, episodes=None):
        self._tracker.check_stop()
        return self._venv.reset(episodes)

    def _record_wave(self, out):
        for episode in out[3]["episodes"]:
            if episode is not None:
                self._tracker.record(
                    episode.cost, episode.feasible,
                    assignments_fn=lambda e=episode: e.assignments,
                    genome=episode.genome, defer_stop=True)
        return out

    def step(self, actions):
        return self._record_wave(self._venv.step(actions))

    def step_async(self, actions, background: bool = True):
        return self._venv.step_async(actions, background=background)

    def step_wait(self, handle):
        # Episode results materialize at wait time, so the observer
        # fires here (the double-buffered drivers bypass step()).
        return self._record_wave(self._venv.step_wait(handle))


class _ObservedEvaluator:
    """Forwarding proxy firing one observer step per design-point
    evaluation (scalar, batched, level-indexed, or raw)."""

    def __init__(self, evaluator, tracker: _Tracker) -> None:
        self._evaluator = evaluator
        self._tracker = tracker

    def __getattr__(self, name):
        return getattr(self._evaluator, name)

    def _record(self, outcome, assignments_fn) -> None:
        self._tracker.record(outcome.cost, outcome.feasible,
                             assignments_fn=assignments_fn)

    def evaluate_genome(self, genome):
        outcome = self._evaluator.evaluate_genome(genome)
        decode = self._evaluator.decode_genome
        self._record(outcome, lambda: decode(genome))
        return outcome

    def evaluate_population(self, genomes):
        outcomes = self._evaluator.evaluate_population(genomes)
        decode = self._evaluator.decode_genome
        for genome, outcome in zip(genomes, outcomes):
            self._record(outcome, lambda g=genome: decode(g))
        return outcomes

    def evaluate_raw(self, assignments):
        outcome = self._evaluator.evaluate_raw(assignments)
        self._record(outcome, lambda: assignments)
        return outcome

    def evaluate_population_raw(self, population):
        outcomes = self._evaluator.evaluate_population_raw(population)
        for assignments, outcome in zip(population, outcomes):
            self._record(outcome, lambda a=assignments: a)
        return outcomes


class SessionContext:
    """Everything a method runner needs to drive one search.

    Built by :class:`SearchSession` (from a :class:`SearchSpec`) and by
    :func:`repro.experiments.runner.compare_methods` (from a
    :class:`TaskSpec`), so both share one set of runners.
    """

    def __init__(self, task: TaskSpec, budget: int,
                 seed: Optional[int] = 0,
                 finetune: Optional[int] = None,
                 cost_model: Optional[CostModel] = None,
                 constraint=None,
                 tracker: Optional[_Tracker] = None,
                 envs: int = 1) -> None:
        if budget < 1:
            raise ValueError("budget must be >= 1")
        if envs < 1:
            raise ValueError("envs must be >= 1")
        self.task = task
        self.budget = budget
        self.seed = seed
        self._finetune = finetune
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self._constraint = constraint
        self.tracker = tracker if tracker is not None else _Tracker()
        #: Lockstep episode count for episodic methods (1 = scalar
        #: stepping; >1 wraps the env in a VectorHWAssignmentEnv).
        self.envs = envs
        #: Method-specific rich result (e.g. the two-stage
        #: ConfuciuXResult), surfaced as ``SessionResult.detail``.
        self.detail: Any = None

    @property
    def constraint(self):
        """The task constraint, built once on first use."""
        if self._constraint is None:
            self._constraint = self.task.constraint(self.cost_model)
        return self._constraint

    @property
    def finetune(self) -> int:
        """Stage-2 budget for two-stage methods (default ``budget//4``)."""
        return self.budget // 4 if self._finetune is None else self._finetune

    def make_env(self):
        """A fresh environment, observed when callbacks are attached.

        With ``envs > 1`` the scalar env is wrapped in a
        :class:`~repro.env.vector.VectorHWAssignmentEnv`, so every
        episodic agent rolls lockstep episode waves with one batched
        cost call per layer step.  ``envs == 1`` keeps the scalar
        stepping path (to which single-env waves are bit-identical --
        see tests/test_rl_vector_parity.py).
        """
        env = self.task.make_env(self.cost_model, self.constraint)
        if self.envs > 1:
            from repro.env.vector import VectorHWAssignmentEnv

            venv = VectorHWAssignmentEnv(env, self.envs)
            if self.tracker.active:
                return _ObservedVectorEnv(venv, self.tracker)
            return venv
        return _ObservedEnv(env, self.tracker) if self.tracker.active else env

    def make_evaluator(self):
        """A fresh genome evaluator, observed when callbacks are
        attached."""
        evaluator = self.task.make_evaluator(self.cost_model,
                                             self.constraint)
        if self.tracker.active:
            return _ObservedEvaluator(evaluator, self.tracker)
        return evaluator


# ----------------------------------------------------------------------
# Per-kind method runners.
def _stopped_result(name: str, tracker: _Tracker, evaluations: int,
                    episodes: int, started: float) -> SearchResult:
    """Synthesize the outcome of an early-stopped search from the
    tracker's own bookkeeping."""
    result = SearchResult(algorithm=name)
    result.best_cost = tracker.best_cost
    result.best_assignments = tracker.best_assignments
    result.best_genome = tracker.best_genome
    result.history = list(tracker.history)
    result.evaluations = evaluations
    result.episodes = episodes
    result.wall_time_s = time.perf_counter() - started
    result.extra["stopped_early"] = True
    return result


def run_episodic(info: MethodInfo, context: SessionContext) -> SearchResult:
    """Drive an episodic-RL method: ``method.search(env, episodes)``."""
    method = info.factory(seed=context.seed)
    env = context.make_env()
    started = time.perf_counter()
    try:
        return method.search(env, context.budget)
    except StopSearch:
        return _stopped_result(info.name, context.tracker, env.evaluations,
                               env.episodes, started)


def run_genome(info: MethodInfo, context: SessionContext) -> SearchResult:
    """Drive a genome-space method: ``method.search(evaluator, budget)``."""
    method = info.factory(seed=context.seed)
    evaluator = context.make_evaluator()
    started = time.perf_counter()
    try:
        return method.search(evaluator, context.budget)
    except StopSearch:
        return _stopped_result(info.name, context.tracker,
                               evaluator.evaluations, context.tracker.steps,
                               started)


def run_local_ga(info: MethodInfo, context: SessionContext) -> SearchResult:
    """Drive the stage-2 GA standalone: it fine-tunes from the documented
    deterministic seed point -- the minimal uniform genome (level 0 per
    gene, style index 0 under MIX, the most-feasible corner of the
    space) -- with raw bounds derived from the action space exactly as
    the two-stage pipeline derives them.

    ``budget`` counts design-point evaluations, the same currency every
    genome-space method spends, and is converted to GA generations
    (initial population + offspring per generation), so equal-budget
    comparisons against the other methods stay fair.
    """
    evaluator = context.make_evaluator()
    space = evaluator.space
    method = info.factory(seed=context.seed,
                          max_pes=max(space.pe_levels),
                          max_l1_bytes=2 * max(space.buf_levels))
    genome = [0] * evaluator.genome_length
    initial = evaluator.decode_genome(genome)
    offspring = max(1, method.population_size - method.elite)
    generations = max(
        1, (context.budget - method.population_size) // offspring)
    started = time.perf_counter()
    try:
        return method.search(evaluator, initial, generations)
    except StopSearch:
        return _stopped_result(info.name, context.tracker,
                               evaluator.evaluations, context.tracker.steps,
                               started)


def run_two_stage(info: MethodInfo, context: SessionContext) -> SearchResult:
    """Drive a two-stage pipeline (global RL stage + local fine-tune).

    Observers cover the global stage (one ``on_step`` per episode); the
    short fine-tune stage runs unobserved and is reflected in the final
    result.  The pipeline builds its own platform constraint exactly as
    the legacy ``ConfuciuX(...)`` path did, so results are bit-identical.

    ``SearchSpec.envs`` applies to the global RL stage exactly as it
    does to the standalone episodic methods: with ``envs > 1`` the
    pipeline's internally built env is wrapped in a
    :class:`~repro.env.vector.VectorHWAssignmentEnv`, so REINFORCE rolls
    lockstep episode waves with one batched cost call per layer step
    (single-env waves are bit-identical to scalar stepping).
    """
    task = context.task
    builder = info.factory(seed=context.seed)
    pipeline = builder(
        task.layers(),
        objective=task.objective,
        dataflow=None if task.mix else task.dataflow,
        mix=task.mix,
        num_levels=task.num_levels,
        max_pes=task.max_pes,
        constraint_kind=task.constraint_kind,
        platform=task.platform,
        cost_model=context.cost_model,
        constraint=(context.constraint
                    if task.constraint_kind == "resource" else None),
    )
    if context.envs > 1:
        from repro.env.vector import VectorHWAssignmentEnv

        pipeline.env = VectorHWAssignmentEnv(pipeline.env, context.envs)
        if context.tracker.active:
            pipeline.env = _ObservedVectorEnv(pipeline.env,
                                              context.tracker)
    elif context.tracker.active:
        pipeline.env = _ObservedEnv(pipeline.env, context.tracker)
    started = time.perf_counter()
    try:
        outcome = pipeline._run(global_epochs=context.budget,
                                finetune_generations=context.finetune)
    except StopSearch:
        return _stopped_result(info.name, context.tracker,
                               pipeline.env.evaluations,
                               pipeline.env.episodes, started)
    context.detail = outcome
    return _two_stage_search_result(info.name, outcome)


def _two_stage_search_result(name: str, outcome) -> SearchResult:
    """Flatten a :class:`ConfuciuXResult` into the uniform result type."""
    stage1 = outcome.global_result
    stage2 = outcome.finetune_result
    result = SearchResult(algorithm=name)
    result.best_cost = outcome.best_cost
    result.best_assignments = outcome.best_assignments
    result.best_genome = (stage2.best_genome
                          if stage2 is not None
                          and stage2.best_genome is not None
                          else stage1.best_genome)
    result.history = outcome.trace
    result.evaluations = stage1.evaluations
    result.episodes = stage1.episodes
    result.cache_hits = stage1.cache_hits
    result.wall_time_s = stage1.wall_time_s
    result.memory_bytes = stage1.memory_bytes
    if stage2 is not None:
        result.evaluations += stage2.evaluations
        result.episodes += stage2.episodes
        result.cache_hits += stage2.cache_hits
        result.wall_time_s += stage2.wall_time_s
        result.memory_bytes = max(result.memory_bytes, stage2.memory_bytes)
    impr1, impr2 = outcome.improvement_fractions()
    utilization = outcome.utilization()
    result.extra.update({
        "initial_valid_cost": outcome.initial_valid_cost,
        "global_cost": outcome.global_cost,
        "finetune_cost": stage2.best_cost if stage2 is not None else None,
        "global_improvement": impr1,
        "finetune_improvement": impr2,
        "constraint_used": (utilization.used
                            if utilization is not None else None),
        "constraint_budget": (utilization.budget
                              if utilization is not None else None),
    })
    return result


#: Default run protocol per method kind.
DEFAULT_RUNNERS: Dict[str, Callable] = {
    KIND_EPISODIC: run_episodic,
    KIND_GENOME: run_genome,
    KIND_TWO_STAGE: run_two_stage,
}


def run_method(info: MethodInfo, context: SessionContext) -> SearchResult:
    """Run one registered method in ``context`` (registry override or the
    default runner for its kind)."""
    runner = info.runner if info.runner is not None \
        else DEFAULT_RUNNERS[info.kind]
    return runner(info, context)


# ----------------------------------------------------------------------
@dataclass
class SessionResult:
    """A :class:`SearchResult` plus the spec and provenance of its run.

    Serializes to a single JSON document (``to_json``/``save``) from which
    both the spec and the result round-trip (``from_json``/``load``), so a
    long search is reproducible from its own output file.

    Attributes:
        spec: The exact configuration that produced this result.
        result: The uniform search outcome.
        stopped_early: Whether an observer stopped the run before the
            budget was exhausted.
        provenance: Run metadata (package version, method kind,
            timestamps).
        detail: Method-specific rich result object (e.g. the two-stage
            :class:`~repro.core.confuciux.ConfuciuXResult`); not
            serialized.
    """

    spec: SearchSpec
    result: SearchResult
    stopped_early: bool = False
    provenance: Dict[str, Any] = field(default_factory=dict)
    detail: Any = field(default=None, repr=False, compare=False)

    # Convenience views ------------------------------------------------
    @property
    def method(self) -> str:
        return self.spec.method

    @property
    def feasible(self) -> bool:
        return self.result.feasible

    @property
    def best_cost(self) -> Optional[float]:
        return self.result.best_cost

    @property
    def best_assignments(self) -> Optional[Tuple]:
        return self.result.best_assignments

    @property
    def history(self) -> List[float]:
        return self.result.history

    @property
    def pareto_front(self) -> Optional[List[Dict[str, Any]]]:
        """The non-dominated front a multi-objective method found, as a
        list of JSON-safe ``{"objectives": {name: value}, "genome": ...,
        "assignments": ...}`` records (``None`` for scalar methods).
        Lives in ``result.extra``, so it serializes with the session."""
        return self.result.extra.get("pareto_front")

    def summary(self) -> str:
        """One line: method, model, outcome.  For multi-objective runs
        the scalar figure is labelled with its primary component (that
        is all ``best_cost`` tracks); the front size is appended."""
        from repro.objectives import objective_cost_label

        cost = self.result.format_cost()
        flag = " (stopped early)" if self.stopped_early else ""
        front = self.pareto_front
        if front is not None:
            flag += f", {len(front)}-point Pareto front"
        return (f"{self.method} on {self.spec.model}: "
                f"best {objective_cost_label(self.spec.objective)} {cost} "
                f"in {self.result.evaluations} evaluations{flag}")

    # Serialization ----------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-safe dict capturing spec, result, and provenance."""
        return {
            "spec": self.spec.to_dict(),
            "result": search_result_to_dict(self.result),
            "stopped_early": self.stopped_early,
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SessionResult":
        """Inverse of :meth:`to_dict` (``detail`` is not restored)."""
        return cls(
            spec=SearchSpec.from_dict(data["spec"]),
            result=search_result_from_dict(data["result"]),
            stopped_early=data.get("stopped_early", False),
            provenance=dict(data.get("provenance", {})),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, document: str) -> "SessionResult":
        return cls.from_dict(json.loads(document))

    def save(self, path) -> None:
        """Write this result (spec included) to ``path`` as JSON."""
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path) -> "SessionResult":
        """Read a result previously written by :meth:`save`."""
        with open(path) as handle:
            return cls.from_json(handle.read())


class SearchSession:
    """One search run: spec in, :class:`SessionResult` out.

    Args:
        spec: The frozen run configuration (also fixes the method).
        cost_model: Optional shared estimator; pass one to reuse its layer
            cache across many sessions (the comparison-grid pattern).

    The session validates the method name eagerly, so typos fail at
    construction, not after minutes of search.
    """

    def __init__(self, spec: SearchSpec,
                 cost_model: Optional[CostModel] = None) -> None:
        self.spec = spec
        self.info = get_method(spec.method)
        # A session-built cost model honors the spec's kernel choice; a
        # caller-shared model keeps whatever kernel it was built with
        # (except under kernel="auto", where the spec explicitly asks
        # the session to pick).
        self.cost_model = cost_model if cost_model is not None \
            else CostModel(kernel=spec.resolved_kernel())
        self.result: Optional[SessionResult] = None
        self._observers: Tuple[SearchObserver, ...] = ()

    def _probe_kernel(self) -> Optional[dict]:
        """Resolve ``kernel="auto"``: one micro-probe (cached per
        (model, platform) identity) picks the faster of the
        bit-identical batched/fused kernels and installs it on the
        session's cost model before anything evaluates."""
        if not self.spec.kernel_is_auto():
            return None
        from repro.costmodel.batched import LayerTable
        from repro.parallel.tuning import select_kernel

        spec = self.spec
        table = LayerTable.build(spec.task().layers())
        selected, timings = select_kernel(
            self.cost_model.hw, table,
            cache_key=(spec.model, spec.platform, spec.dataflow,
                       spec.layer_slice))
        self.cost_model.kernel = selected
        if self.cost_model._batched is not None:
            self.cost_model._batched.kernel = selected
        return {"selected": selected, "timings": timings}

    def _notify_warning(self, kind: str, detail: dict) -> None:
        """Fan a structured mid-run warning out to this run's observers
        (the fault-tolerance layer calls this on backend degradation)."""
        for observer in self._observers:
            observer.on_warning(kind, detail)

    def run(self, callbacks: Sequence[SearchObserver] = ()) -> SessionResult:
        """Run the method to its budget (or an observer stop) and return
        the wrapped result.  Sessions are reusable: each ``run`` builds a
        fresh method/environment from the spec.

        When the spec resolves to a parallel executor and no
        :class:`~repro.parallel.ParallelCoordinator` was passed, the
        session creates one for the run: workers spawn on the first
        batch, are reused across generations, and are shut down on every
        exit path (``on_teardown`` fires from a ``finally``).  Observer
        hooks are only attached for caller-passed callbacks, so a bare
        ``run()`` still drives exactly the legacy objects -- parallel or
        not, results are bit-identical.
        """
        import repro
        from repro.parallel import ParallelCoordinator, PoolLease

        observers = list(callbacks)
        executor = self.spec.resolved_executor()
        kernel_probe = self._probe_kernel()
        kernel = (kernel_probe["selected"] if kernel_probe is not None
                  else self.spec.resolved_kernel())
        if (executor != "serial"
                and self.cost_model.executor is None
                and not any(isinstance(observer,
                                       (ParallelCoordinator, PoolLease))
                            for observer in observers)):
            # Session-owned coordinator: lifecycle only, not tracking --
            # the tracker keeps observing just the user's callbacks.  A
            # backend already installed on the cost model (directly or
            # by a passed coordinator) is the caller's to manage.
            coordinator = ParallelCoordinator(
                executor=executor, workers=self.spec.resolved_workers(),
                nodes=self.spec.resolved_nodes(),
                min_batch_per_worker=(
                    self.spec.resolved_dispatch_min_batch()),
                task_timeout_s=self.spec.resolved_task_timeout_s(),
                kernel=kernel,
                autotune=self.spec.resolved_autotune(),
                auto_dispatch=self.spec.dispatch_is_auto())
            if kernel_probe is not None and coordinator.tuner is not None:
                # The probe result rides the tuner so one snapshot
                # carries the whole tuning story into provenance.
                coordinator.tuner.kernel = kernel_probe
            observers.append(coordinator)
        self._observers = tuple(observers)
        tracker = _Tracker(callbacks)
        context = SessionContext(
            task=self.spec.task(), budget=self.spec.budget,
            seed=self.spec.seed, finetune=self.spec.finetune,
            cost_model=self.cost_model, tracker=tracker,
            envs=self.spec.resolved_envs())
        for observer in observers:
            observer._begin_run()
            observer.on_start(self)
        started_at = time.strftime("%Y-%m-%dT%H:%M:%S")
        try:
            search_result = run_method(self.info, context)
        finally:
            for observer in observers:
                observer.on_teardown()
        outcome = SessionResult(
            spec=self.spec,
            result=search_result,
            stopped_early=tracker.stopped,
            provenance={
                "repro_version": repro.__version__,
                "method_kind": self.info.kind,
                "executor": executor,
                "kernel": kernel,
                "autotune": self.spec.resolved_autotune(),
                "envs": context.envs,
                "started_at": started_at,
                "finished_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
            },
            detail=context.detail,
        )
        if kernel_probe is not None:
            # A coordinator with a tuner overwrites this with its full
            # snapshot in on_finish below (tuner.kernel carries the
            # probe); the serial / no-tuner paths keep this record.
            outcome.provenance["tuning"] = {"kernel": kernel_probe}
        for observer in observers:
            observer.on_finish(outcome)
        self.result = outcome
        return outcome


def explore(model: str, method: str = "confuciux", budget: int = 500,
            seed: Optional[int] = 0,
            callbacks: Sequence[SearchObserver] = (),
            cost_model: Optional[CostModel] = None,
            **spec_kwargs) -> SessionResult:
    """One-call entry point: build a spec, run a session, return the
    result.

    Example::

        import repro

        result = repro.explore(model="mobilenet_v2", method="sa",
                               budget=200, seed=0, platform="iotx")
        print(result.summary())

    Extra keyword arguments flow into :class:`SearchSpec` (``objective``,
    ``platform``, ``layer_slice``, ...).
    """
    spec = SearchSpec(model=model, method=method, budget=budget, seed=seed,
                      **spec_kwargs)
    return SearchSession(spec, cost_model=cost_model).run(callbacks=callbacks)
