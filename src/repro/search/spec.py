"""The immutable run configuration behind every :class:`SearchSession`.

A :class:`SearchSpec` captures *everything* that determines a search run --
workload, platform, objective, dataflow, constraint kind, method, budget
and seed -- as one frozen dataclass, so a run can be named, logged,
compared, and reproduced from a single JSON document.  Two runs built from
equal specs produce bit-identical results.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, fields, replace
from typing import Optional

from repro.experiments.tasks import TaskSpec
from repro.models.zoo import list_models
from repro.objectives import Objective, resolve_objective

#: The legacy scalar objective names (any registered objective name or
#: ``weighted:`` / ``multi:`` / dict spec is accepted as well; see
#: :mod:`repro.objectives`).
OBJECTIVES = ("latency", "energy", "edp")
DATAFLOWS = ("dla", "eye", "shi")
CONSTRAINT_KINDS = ("area", "power", "resource")
PLATFORMS = ("unlimited", "cloud", "iot", "iotx")
DEPLOYMENTS = ("lp", "ls")


def _executors():
    """The canonical backend names, owned by :mod:`repro.parallel`
    (imported lazily: validation is cold-path and this keeps the spec
    module import-light and cycle-free)."""
    from repro.parallel.backend import EXECUTORS

    return EXECUTORS


def _kernels():
    """The canonical cost-model kernel names, owned by
    :mod:`repro.costmodel.fused` (lazy for the same reason)."""
    from repro.costmodel.fused import KERNELS

    return KERNELS


@dataclass(frozen=True)
class SearchSpec:
    """A fully specified, serializable search run.

    Attributes:
        model: Workload-zoo name (kept to registry names so the spec stays
            serializable; pass explicit layer lists through
            :class:`repro.experiments.tasks.TaskSpec` instead).
        method: Registered search-method name (see
            :func:`repro.search.registry.list_methods`).
        objective: Any objective spec (minimized): a registered name
            ("latency" / "energy" / "edp" / "area" / "power" / custom),
            a compact ``weighted:latency=0.5,energy=0.5`` or
            ``multi:latency,energy`` string, a structured spec dict, or
            an :class:`repro.objectives.Objective` instance (stored as
            its JSON-safe spec, so serialization round-trips).
        dataflow: Fixed style, also used for constraint calibration under
            MIX.
        constraint_kind: "area" | "power" (Table II platform budgets) or
            "resource" (FPGA caps, Table VIII).
        platform: Table-II budget tier.
        budget: Search budget -- episodes for episodic-RL methods, whole
            design-point evaluations for genome-space methods, stage-1
            epochs for two-stage methods.
        seed: Master RNG seed handed to the method factory (``None`` draws
            fresh OS entropy; fix it for reproducible runs).
        mix: Per-layer dataflow co-automation (Section IV-D).
        num_levels: Coarse action levels L (Table I).
        max_pes: Top of the PE ladder.
        deployment: "lp" or "ls".
        max_total_pes / max_total_l1: FPGA caps when ``constraint_kind``
            is "resource".
        layer_slice: Restrict to the first N layers (None = full model).
        finetune: Stage-2 budget for two-stage methods; ``None`` means
            ``budget // 4``.  Ignored by single-stage methods.
        executor: Execution backend for population-level evaluation --
            "serial" | "thread" | "process" | "distributed" -- or
            ``None`` to defer to ``$REPRO_EXECUTOR`` (default
            "serial").  Results are bit-identical across backends; only
            wall-clock changes.
        workers: Worker count for parallel executors; ``None`` defers to
            ``$REPRO_WORKERS``, else the available cores capped at 8
            (see :func:`repro.parallel.default_workers`).  Never affects
            results, only sharding.
        nodes: Node-fleet size for the "distributed" executor; ``None``
            defers to ``$REPRO_NODES``, else the built-in default (see
            :func:`repro.parallel.default_nodes`).  With ``$REPRO_BIND``
            unset the session self-spawns that many localhost
            ``repro worker`` agents; with it set, externally started
            agents join the fleet.  Ignored by other executors; never
            affects results, only sharding.
        dispatch_min_batch: Adaptive-dispatch threshold: parallel
            backends fall back to the in-process kernel for batches
            smaller than ``dispatch_min_batch * workers`` (the measured
            IPC break-even; see BENCH_parallel.json).  ``None`` defers to
            ``$REPRO_DISPATCH_MIN``, else the executor's calibrated
            per-transport default (see
            :data:`repro.parallel.backend.TRANSPORT_MIN_BATCH`); ``0``
            disables the fallback.  ``"auto"`` (spec or env) calibrates
            the crossover at runtime instead: the first batches time
            inline vs sharded execution and freeze a measured
            per-transport threshold (see
            :class:`repro.parallel.tuning.BreakEvenCalibrator`).  Never
            affects results.
        envs: Lockstep episode count for episodic-RL methods: the agent
            rolls ``envs`` episodes per wave through a
            :class:`~repro.env.vector.VectorHWAssignmentEnv`, paying one
            batched cost call per layer step (see BENCH_rl.json).
            ``None`` defers to ``$REPRO_ENVS`` (default 1).  ``envs=1``
            is bit-identical to scalar stepping; ``envs>1`` is a new
            reproducible scenario whose RNG stream is wave-major (one
            batched draw per action head per wave -- see API.md), so
            ``envs`` is part of the scenario identity, like ``seed``.
            Two-stage methods apply it to their global RL stage;
            genome-space methods ignore it.
        kernel: Cost-model compute kernel for population-level
            evaluation -- "batched" (the reference engine) | "fused"
            (precompiled per-(model, platform) tensor programs,
            float64 bit-identical) | "fused32" (float32 epilogue,
            ~1e-7 relative error on float outputs) | "fused-jit"
            (numba element loop, requires numba installed) | "auto"
            (a one-shot micro-probe at session start picks the faster
            of the bit-identical "batched"/"fused" pair for this
            (model, platform); the choice lands in
            ``provenance["tuning"]["kernel"]``) -- or ``None`` to defer
            to ``$REPRO_KERNEL`` (default "batched").  Except for
            "fused32", never affects results, only wall-clock (see
            PERFORMANCE.md).
        task_timeout_s: Per-batch deadline (seconds) for the process
            backend's supervision: a batch missing it has its hung
            workers terminated and its lost shards re-dispatched (see
            :class:`repro.parallel.ProcessBackend`).  ``None`` defers to
            ``$REPRO_TASK_TIMEOUT``; ``0`` explicitly disables the
            deadline.  Recovery never affects results, only wall-clock.
        autotune: Profile-guided adaptive shard planning: parallel
            backends size initial shards proportional to each
            worker/node's measured rows/sec (EWMA over per-shard timing
            echoes; see :mod:`repro.parallel.tuning`), instead of the
            static uniform round-robin.  ``None`` defers to
            ``$REPRO_AUTOTUNE`` (default off).  Scheduling only -- the
            kernel is shard-invariant, so results are bit-identical
            with autotune on or off (the parity suite locks this).
    """

    model: str
    method: str = "confuciux"
    objective: object = "latency"
    dataflow: str = "dla"
    constraint_kind: str = "area"
    platform: str = "iot"
    budget: int = 500
    seed: Optional[int] = 0
    mix: bool = False
    num_levels: int = 12
    max_pes: int = 128
    deployment: str = "lp"
    max_total_pes: int = 4096
    max_total_l1: int = 8192
    layer_slice: Optional[int] = None
    finetune: Optional[int] = None
    executor: Optional[str] = None
    workers: Optional[int] = None
    nodes: Optional[int] = None
    dispatch_min_batch: Optional[object] = None  # int >= 0 or "auto"
    envs: Optional[int] = None
    task_timeout_s: Optional[float] = None
    kernel: Optional[str] = None
    autotune: Optional[bool] = None

    def __post_init__(self) -> None:
        if not isinstance(self.model, str):
            raise TypeError(
                "SearchSpec.model must be a workload-zoo name (a str); "
                "use TaskSpec for explicit layer lists")
        if self.model not in list_models():
            raise ValueError(
                f"unknown model {self.model!r}; see repro.list_models()")
        if isinstance(self.objective, Objective):
            # Instances are stored as their JSON-safe spec so the frozen
            # dataclass stays serializable and comparable.
            object.__setattr__(self, "objective", self.objective.spec())
        try:
            resolve_objective(self.objective)
        except (KeyError, ValueError, TypeError) as error:
            raise ValueError(
                f"objective must be a registered objective name, a "
                f"weighted:/multi: spec, a spec dict, or an Objective "
                f"instance: {error}") from None
        for attribute, allowed in (("dataflow", DATAFLOWS),
                                   ("constraint_kind", CONSTRAINT_KINDS),
                                   ("platform", PLATFORMS),
                                   ("deployment", DEPLOYMENTS)):
            value = getattr(self, attribute)
            if value not in allowed:
                raise ValueError(
                    f"{attribute} must be one of {allowed}, got {value!r}")
        if self.budget < 1:
            raise ValueError("budget must be >= 1")
        if self.finetune is not None and self.finetune < 0:
            raise ValueError("finetune must be >= 0 (0 skips stage 2)")
        if self.num_levels < 2:
            raise ValueError("num_levels must be >= 2")
        if self.executor is not None and self.executor not in _executors():
            raise ValueError(
                f"executor must be one of {_executors()} (or None), "
                f"got {self.executor!r}")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1 (or None for auto)")
        if self.nodes is not None and self.nodes < 1:
            raise ValueError("nodes must be >= 1 (or None for auto)")
        if self.dispatch_min_batch is not None \
                and self.dispatch_min_batch != "auto" \
                and (not isinstance(self.dispatch_min_batch, int)
                     or self.dispatch_min_batch < 0):
            raise ValueError(
                "dispatch_min_batch must be an int >= 0 (0 disables the "
                "adaptive fallback), \"auto\" (runtime break-even "
                "calibration), or None (defer to $REPRO_DISPATCH_MIN)")
        if self.envs is not None and self.envs < 1:
            raise ValueError(
                "envs must be >= 1 (or None to defer to $REPRO_ENVS)")
        if self.task_timeout_s is not None and self.task_timeout_s < 0:
            raise ValueError(
                "task_timeout_s must be >= 0 (0 disables the deadline, "
                "None defers to $REPRO_TASK_TIMEOUT)")
        if self.kernel is not None and self.kernel != "auto" \
                and self.kernel not in _kernels():
            raise ValueError(
                f"kernel must be one of {_kernels()}, \"auto\", or None "
                f"(defer to $REPRO_KERNEL), got {self.kernel!r}")
        if self.autotune is not None \
                and not isinstance(self.autotune, bool):
            raise ValueError(
                "autotune must be True, False, or None (defer to "
                "$REPRO_AUTOTUNE)")

    # ------------------------------------------------------------------
    def resolved_executor(self) -> str:
        """The effective backend: the spec's, else ``$REPRO_EXECUTOR``,
        else "serial".  Backends never change results (the parity suite
        holds them bit-identical), so the env-var override is a safe
        deploy-time knob."""
        executor = self.executor
        if executor is None:
            executor = os.environ.get("REPRO_EXECUTOR", "serial")
        if executor not in _executors():
            raise ValueError(
                f"REPRO_EXECUTOR must be one of {_executors()}, "
                f"got {executor!r}")
        return executor

    def resolved_workers(self) -> int:
        """The effective worker count (spec, ``$REPRO_WORKERS``, cores)."""
        if self.workers is not None:
            return self.workers
        from repro.parallel.backend import default_workers

        return default_workers()

    def resolved_nodes(self) -> int:
        """The effective distributed-fleet size (spec, ``$REPRO_NODES``,
        built-in default).  Only the "distributed" executor consumes it."""
        if self.nodes is not None:
            return self.nodes
        from repro.parallel.distributed import default_nodes

        return default_nodes()

    def resolved_objective(self) -> Objective:
        """The spec's objective as a resolved
        :class:`~repro.objectives.Objective` instance."""
        return resolve_objective(self.objective)

    def resolved_envs(self) -> int:
        """The effective lockstep episode count (spec, ``$REPRO_ENVS``,
        1).  Unlike the executor knobs this is *scenario-defining* for
        episodic methods when > 1: it changes which episodes are sampled
        (reproducibly, for a fixed seed)."""
        if self.envs is not None:
            return self.envs
        value = os.environ.get("REPRO_ENVS")
        if value is None:
            return 1
        envs = int(value)
        if envs < 1:
            raise ValueError("REPRO_ENVS must be >= 1")
        return envs

    def resolved_task_timeout_s(self) -> float:
        """The effective per-batch deadline in seconds (spec,
        ``$REPRO_TASK_TIMEOUT``, 0 = disabled)."""
        if self.task_timeout_s is not None:
            return float(self.task_timeout_s)
        from repro.parallel.backend import default_task_timeout

        return default_task_timeout()

    def resolved_kernel(self) -> str:
        """The effective cost-model kernel (spec, ``$REPRO_KERNEL``,
        "batched").  Every kernel except "fused32" is bit-identical to
        the reference engine (the fused parity suite holds them so), so
        the env-var override is a safe deploy-time knob.  ``"auto"``
        resolves to "batched" here -- the session's micro-probe
        (:func:`repro.parallel.tuning.select_kernel`) replaces it
        before the first evaluation."""
        from repro.costmodel.fused import resolve_kernel

        if self.kernel_is_auto():
            return "batched"
        return resolve_kernel(self.kernel)

    def kernel_is_auto(self) -> bool:
        """Whether the kernel should be micro-probed at session start
        (spec or ``$REPRO_KERNEL`` says "auto")."""
        kernel = self.kernel
        if kernel is None:
            kernel = os.environ.get("REPRO_KERNEL")
        return kernel == "auto"

    def resolved_dispatch_min_batch(self) -> int:
        """The effective adaptive-dispatch threshold (spec,
        ``$REPRO_DISPATCH_MIN``, the executor's calibrated per-transport
        break-even).  Under ``"auto"`` this is the *fallback* the
        runtime calibrator freezes to when probing stays inconclusive."""
        if self.dispatch_is_auto():
            from repro.parallel.backend import (
                DEFAULT_DISPATCH_MIN_BATCH,
                TRANSPORT_MIN_BATCH,
            )

            return TRANSPORT_MIN_BATCH.get(self.resolved_executor(),
                                           DEFAULT_DISPATCH_MIN_BATCH)
        if self.dispatch_min_batch is not None:
            return self.dispatch_min_batch
        from repro.parallel.backend import default_dispatch_min_batch

        return default_dispatch_min_batch(self.resolved_executor())

    def dispatch_is_auto(self) -> bool:
        """Whether the inline-vs-shard crossover should be calibrated
        at runtime (spec or ``$REPRO_DISPATCH_MIN`` says "auto")."""
        if self.dispatch_min_batch == "auto":
            return True
        if self.dispatch_min_batch is None:
            env = os.environ.get("REPRO_DISPATCH_MIN", "")
            return env.strip().lower() == "auto"
        return False

    def resolved_autotune(self) -> bool:
        """Whether adaptive shard planning is on (spec,
        ``$REPRO_AUTOTUNE``, off)."""
        if self.autotune is not None:
            return self.autotune
        from repro.parallel.tuning import default_autotune

        return default_autotune()

    # ------------------------------------------------------------------
    @property
    def finetune_budget(self) -> int:
        """Resolved stage-2 budget: explicit ``finetune`` or ``budget//4``."""
        return self.budget // 4 if self.finetune is None else self.finetune

    def task(self) -> TaskSpec:
        """The equivalent :class:`TaskSpec` (env/evaluator construction)."""
        return TaskSpec(
            model=self.model, dataflow=self.dataflow,
            objective=self.objective, constraint_kind=self.constraint_kind,
            platform=self.platform, mix=self.mix,
            num_levels=self.num_levels, max_pes=self.max_pes,
            deployment=self.deployment, max_total_pes=self.max_total_pes,
            max_total_l1=self.max_total_l1, layer_slice=self.layer_slice)

    def replace(self, **changes) -> "SearchSpec":
        """A copy with ``changes`` applied (validation re-runs)."""
        return replace(self, **changes)

    def __hash__(self) -> int:
        """Hash by canonical JSON: composite (dict) objective specs
        would otherwise make the frozen dataclass unhashable, breaking
        specs-as-keys dedup for exactly the richest runs.  ``sort_keys``
        keeps the hash consistent with field equality regardless of
        spec-dict key order."""
        return hash(json.dumps(self.to_dict(), sort_keys=True))

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-safe dict fully reconstructing this spec."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SearchSpec":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown SearchSpec fields: {sorted(unknown)}")
        return cls(**data)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """This spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, document: str) -> "SearchSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(document))
