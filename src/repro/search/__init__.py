"""Unified search sessions: one registry, one config, one result.

This package is the public API for running any search method the
repository ships (or that you register) against any workload:

* :class:`~repro.search.spec.SearchSpec` -- frozen, JSON-serializable run
  configuration.
* :func:`~repro.search.registry.register_method` /
  :func:`~repro.search.registry.list_methods` -- the global method
  registry with capability metadata.
* :class:`~repro.search.session.SearchSession` /
  :func:`~repro.search.session.explore` -- the façade that runs a spec
  and returns a :class:`~repro.search.session.SessionResult`.
* :class:`~repro.search.callbacks.SearchObserver` and friends -- progress
  reporting, early stopping, and checkpointing hooks.
"""

from repro.search.callbacks import (
    CheckpointHook,
    EarlyStopping,
    ProgressReporter,
    SearchObserver,
    StopSearch,
)
from repro.search.registry import (
    KIND_EPISODIC,
    KIND_GENOME,
    KIND_TWO_STAGE,
    MethodInfo,
    get_method,
    list_methods,
    method_names,
    register_method,
    unregister_method,
)
from repro.search.session import (
    SearchSession,
    SessionContext,
    SessionResult,
    explore,
    run_method,
)
from repro.search.spec import SearchSpec

__all__ = [
    "SearchSpec",
    "SearchSession",
    "SessionResult",
    "SessionContext",
    "explore",
    "run_method",
    "MethodInfo",
    "register_method",
    "unregister_method",
    "get_method",
    "list_methods",
    "method_names",
    "KIND_EPISODIC",
    "KIND_GENOME",
    "KIND_TWO_STAGE",
    "SearchObserver",
    "ProgressReporter",
    "EarlyStopping",
    "CheckpointHook",
    "StopSearch",
]
