"""NSGA-II-style multi-objective (Pareto) search over level genomes.

The paper's Cloud/IoT/IoTx grid is a slice of a latency/energy/area
trade-off surface; ``pareto-ga`` searches that surface directly.  It is a
generational GA with the NSGA-II selection machinery -- vectorized
non-dominated sorting plus crowding-distance diversity pressure (see
:mod:`repro.objectives.pareto`) -- breeding level-index genomes with the
same uniform-crossover / per-gene-resample operators as the baseline GA,
and scoring every generation through the batched population evaluator
(so an installed parallel backend shards it across workers).

The evaluator's objective decides the trade-off axes: a
:class:`~repro.objectives.MultiObjective` spec (e.g.
``"multi:latency,energy"``) spans a real front; a scalar objective
degenerates to single-objective search whose "front" is the best point.
Scalar bookkeeping (``best_cost``, the convergence history, observer
steps) tracks the *primary* component, so sessions, early stopping, and
the comparison grids work unchanged; the full non-dominated front rides
in ``SearchResult.extra["pareto_front"]`` as JSON-safe records and
surfaces as ``SessionResult.pareto_front``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.objectives import (
    CostTotals,
    MultiObjective,
    ParetoArchive,
    constrained_rows,
    crowding_distance,
    non_dominated_sort,
)
from repro.optim.base import GenomeOptimizer


class ParetoGA(GenomeOptimizer):
    """NSGA-II over level-index genomes under an evaluation budget.

    Args:
        population_size: Individuals per generation (mu = lambda).
        mutation_rate: Per-gene uniform-resample probability.
        crossover_rate: Per-child probability of uniform crossover.
        tournament_size: Contenders per (rank, crowding) tournament.
        archive_size: Cap on the kept non-dominated front; crowding
            pruning drops the most crowded point when exceeded.
        seed: RNG seed (registry contract: ``default_rng(seed)``).
    """

    name = "pareto-ga"

    def __init__(self, population_size: int = 50,
                 mutation_rate: float = 0.1, crossover_rate: float = 0.9,
                 tournament_size: int = 2, archive_size: int = 128,
                 seed=None, use_batch: bool = True) -> None:
        super().__init__(seed=seed, use_batch=use_batch)
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not 0.0 <= mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if not 0.0 <= crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        self.population_size = population_size
        self.mutation_rate = mutation_rate
        self.crossover_rate = crossover_rate
        self.tournament_size = max(2, tournament_size)
        self.archive_size = archive_size
        self._archive: Optional[ParetoArchive] = None
        self._multi: Optional[MultiObjective] = None

    # ------------------------------------------------------------------
    def _objectives(self) -> MultiObjective:
        """The trade-off axes: the evaluator's multi objective, or its
        scalar objective wrapped as a single-component front."""
        objective = self._evaluator.objective
        if objective.is_multi:
            return objective
        return MultiObjective([objective])

    def _component_rows(self, outcomes) -> np.ndarray:
        """(n, k) objective matrix under constrained dominance.

        Feasible rows carry their true component values; infeasible rows
        are re-encoded by :func:`~repro.objectives.pareto
        .constrained_rows` to a huge finite base scaled by normalized
        budget violation, so selection pressure points infeasible
        individuals *toward* the feasible region (smaller violation
        dominates) instead of scoring them all identically ``+inf``.
        Feasible-only generations are bit-identical to the plain sort.

        The generation's aggregate figures are gathered into four arrays
        and evaluated in *one* vectorized ``evaluate_components`` call --
        a per-outcome numpy dispatch loop would rival the batched kernel
        itself at real population sizes."""
        n = len(outcomes)
        k = len(self._multi.components)
        if n == 0:
            return np.empty((0, k), dtype=np.float64)
        totals = CostTotals(*(
            np.fromiter((getattr(outcome.report, field)
                         for outcome in outcomes), np.float64, count=n)
            for field in ("latency_cycles", "energy_nj", "area_um2",
                          "power_mw")))
        rows = np.ascontiguousarray(
            self._multi.evaluate_components(totals).T)
        feasible = np.fromiter((outcome.feasible for outcome in outcomes),
                               bool, count=n)
        used = np.fromiter((outcome.used for outcome in outcomes),
                           np.float64, count=n)
        budget = self._constraint_budget()
        violation = np.maximum(0.0, used - budget) / budget
        return constrained_rows(rows, feasible, violation)

    def _constraint_budget(self) -> float:
        """The scalar budget ``EvalResult.used`` is measured against
        (platform area/power budget, or the FPGA PE cap)."""
        constraint = self._evaluator.constraint
        budget = getattr(constraint, "budget", None)
        if budget is None:
            budget = float(constraint.max_pes)
        return float(budget)

    def _score(self, population: List[List[int]]):
        """The generation's (n, k) value matrix, or ``None`` when the
        budget ran out mid-generation (the truncated set is abandoned
        for *breeding*, matching the baseline optimizers -- but every
        evaluated outcome still enters the archive: those evaluations
        were charged to the budget, so the reported front must reflect
        them)."""
        outcomes = self.evaluate_batch(population)
        values = self._component_rows(outcomes)
        for genome, outcome, row in zip(population, outcomes, values):
            if outcome.feasible:
                self._archive.add(row, list(genome))
        if len(outcomes) < len(population):
            return None
        return values

    # ------------------------------------------------------------------
    @staticmethod
    def _rank_and_crowd(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Front ranks plus within-front crowding distances."""
        ranks = non_dominated_sort(values)
        crowding = np.zeros(len(values), dtype=np.float64)
        for rank in range(int(ranks.max()) + 1 if len(ranks) else 0):
            members = np.flatnonzero(ranks == rank)
            crowding[members] = crowding_distance(values[members])
        return ranks, crowding

    def _select(self, ranks: np.ndarray, crowding: np.ndarray) -> int:
        """Binary-ish tournament on (rank asc, crowding desc)."""
        contenders = self.rng.choice(len(ranks), size=self.tournament_size,
                                     replace=True)
        return min(contenders,
                   key=lambda i: (ranks[i], -crowding[i], i))

    # ------------------------------------------------------------------
    def _run(self) -> None:
        self._multi = self._objectives()
        self._archive = ParetoArchive(max_size=self.archive_size)

        # Never breed more individuals than the budget can score: tiny
        # budgets still complete a (smaller) generation and report a
        # front instead of abandoning a truncated one.
        population_size = max(2, min(self.population_size, self._budget))
        population = [self.random_genome()
                      for _ in range(population_size)]
        values = self._score(population)
        if values is None:
            self._finalize()
            return
        while not self.exhausted:
            ranks, crowding = self._rank_and_crowd(values)
            offspring: List[List[int]] = []
            while len(offspring) < population_size:
                parent = population[self._select(ranks, crowding)]
                if self.rng.random() < self.crossover_rate:
                    other = population[self._select(ranks, crowding)]
                    child = self.uniform_crossover(parent, other)
                else:
                    child = list(parent)
                offspring.append(self.resample_mutation(
                    child, self.mutation_rate))
            offspring_values = self._score(offspring)
            if offspring_values is None:
                break
            # (mu + lambda) environmental selection over the union.
            union = population + offspring
            union_values = np.concatenate([values, offspring_values])
            ranks, crowding = self._rank_and_crowd(union_values)
            order = sorted(range(len(union)),
                           key=lambda i: (ranks[i], -crowding[i], i))
            keep = order[: population_size]
            population = [union[i] for i in keep]
            values = union_values[keep]
        self._finalize()

    def _finalize(self) -> None:
        """Materialize the archive as the JSON-safe front records."""
        names = self._multi.component_names
        front = []
        for values, genome in self._archive.front():
            assignments = self._evaluator.decode_genome(genome)
            front.append({
                "objectives": {name: float(value)
                               for name, value in zip(names, values)},
                "genome": list(genome),
                "assignments": [list(assignment)
                                for assignment in assignments],
            })
        # Present the front swept along the primary axis; ties keep
        # first-seen (deterministic) order via the stable sort.
        front.sort(key=lambda point: tuple(point["objectives"].values()))
        self._result.extra["pareto_front"] = front
        self._result.extra["objective_names"] = list(names)
