"""Classic design-space-exploration baselines (paper Section II-E).

All five optimizers treat a complete per-layer assignment (a genome of level
indices) as one sample and consume a shared evaluation budget ``Eps``,
mirroring the paper's comparison protocol.
"""

from repro.optim.base import GenomeOptimizer
from repro.optim.grid import GridSearch
from repro.optim.random_search import RandomSearch
from repro.optim.annealing import SimulatedAnnealing
from repro.optim.genetic import GeneticAlgorithm
from repro.optim.bayesian import BayesianOptimization
from repro.optim.pareto_ga import ParetoGA

#: The paper's five scalar baselines (``pareto-ga`` is registered with
#: the search registry separately: it is a capability extension, not one
#: of the paper's comparison columns).
BASELINE_OPTIMIZERS = {
    "grid": GridSearch,
    "random": RandomSearch,
    "sa": SimulatedAnnealing,
    "ga": GeneticAlgorithm,
    "bayesian": BayesianOptimization,
}

__all__ = [
    "GenomeOptimizer",
    "GridSearch",
    "RandomSearch",
    "SimulatedAnnealing",
    "GeneticAlgorithm",
    "BayesianOptimization",
    "ParetoGA",
    "BASELINE_OPTIMIZERS",
]
