"""Grid search: exhaustive enumeration with a coarse sampling stride.

Following Section IV-A3 -- "we enumerate through the design space with the
stride of s in the L=12 level, (e.g., (p1th, b1th), (p1th, b(1+s)th) ...)"
-- the genome space is walked lexicographically like a base-L counter whose
digits advance by ``stride``, until the ``Eps`` budget is spent.  Because
the space is O(L^2N), any realistic budget only ever explores variations of
the last few genes around the all-minimum corner; that is exactly why the
paper's Table IV shows grid search pinned at the same mediocre value
(5.3E+08 for MobileNet-V2) across every constraint tier.
"""

from __future__ import annotations

from typing import List

from repro.optim.base import GenomeOptimizer


class GridSearch(GenomeOptimizer):
    """Strided lexicographic enumeration of the level-index genome space."""

    name = "grid"

    def __init__(self, stride: int = 2, seed=None,
                 use_batch: bool = True) -> None:
        super().__init__(seed=seed, use_batch=use_batch)
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.stride = stride

    def _gene_size(self, gene: int) -> int:
        space = self._evaluator.space
        head = gene % space.actions_per_step
        return space.num_levels if head < 2 else len(space.dataflows)

    def _advance(self, genome: List[int]) -> bool:
        """Base-L counter increment by ``stride``, least-significant gene
        last; returns False once the whole space has been enumerated."""
        for gene in range(len(genome) - 1, -1, -1):
            genome[gene] += self.stride
            if genome[gene] < self._gene_size(gene):
                return True
            genome[gene] = 0
        return False

    def _run(self) -> None:
        genome = [0] * self._evaluator.genome_length
        pending: List[List[int]] = []
        while not self.exhausted:
            pending.append(list(genome))
            advanced = self._advance(genome)
            if not advanced or len(pending) >= min(
                    self.batch_size, self._budget - self._spent):
                self.evaluate_batch(pending)
                pending = []
                if not advanced:
                    return
