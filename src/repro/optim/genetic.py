"""The *baseline* genetic algorithm of Section IV-A3.

This is the general GA the paper compares against -- population 100,
ceil(Eps/100) generations, mutation and crossover rates 0.05 -- not the
specially designed local fine-tuning GA of stage 2 (that lives in
``repro.ga``).  Crossover blends two parents' genes globally, which is
exactly what the paper observes breaking the learnt per-layer budget
relationship: many children violate the constraint and pollute later
generations, so the baseline GA returns NAN under tight constraints.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.optim.base import GenomeOptimizer


class GeneticAlgorithm(GenomeOptimizer):
    """Generational GA with tournament selection and uniform crossover."""

    name = "ga"

    def __init__(self, population_size: int = 100, mutation_rate: float = 0.05,
                 crossover_rate: float = 0.05, tournament_size: int = 3,
                 elite: int = 2, seed=None, use_batch: bool = True) -> None:
        super().__init__(seed=seed, use_batch=use_batch)
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not 0.0 <= mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if not 0.0 <= crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        self.population_size = population_size
        self.mutation_rate = mutation_rate
        self.crossover_rate = crossover_rate
        self.tournament_size = max(2, tournament_size)
        self.elite = max(0, elite)

    # ------------------------------------------------------------------
    def _score(self, population: List[List[int]]
               ) -> Optional[List[Tuple[float, List[int]]]]:
        """Fitness of a whole generation via one batched evaluation;
        ``None`` when the budget ran out mid-generation (the scalar loop
        likewise abandoned partially-scored generations)."""
        outcomes = self.evaluate_batch(population)
        if len(outcomes) < len(population):
            return None
        return [(outcome.cost if outcome.feasible else float("inf"), genome)
                for genome, outcome in zip(population, outcomes)]

    def _tournament(self, scored: List[Tuple[float, List[int]]]
                    ) -> List[int]:
        contenders = self.rng.choice(len(scored), size=self.tournament_size,
                                     replace=True)
        best = min(contenders, key=lambda i: scored[i][0])
        return scored[best][1]

    def _crossover(self, a: List[int], b: List[int]) -> List[int]:
        return self.uniform_crossover(a, b)

    def _mutate(self, genome: List[int]) -> List[int]:
        return self.resample_mutation(genome, self.mutation_rate)

    # ------------------------------------------------------------------
    def _run(self) -> None:
        population = [self.random_genome()
                      for _ in range(self.population_size)]
        scored = self._score(population)
        if scored is None:
            return
        while not self.exhausted:
            scored.sort(key=lambda item: item[0])
            next_generation = [genome for _, genome in scored[:self.elite]]
            while len(next_generation) < self.population_size:
                parent = self._tournament(scored)
                if self.rng.random() < self.crossover_rate:
                    other = self._tournament(scored)
                    child = self._crossover(parent, other)
                else:
                    child = list(parent)
                next_generation.append(self._mutate(child))
            scored = self._score(next_generation)
            if scored is None:
                return
