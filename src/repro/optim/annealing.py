"""Simulated annealing (Kirkpatrick et al. 1983) on the discrete genome.

Random-walk with exploitation: a neighbour mutates one gene by +-step; an
improving move is always accepted, a worsening one with probability
``exp(-delta / T)``.  The temperature and step size follow the paper's
setting (T = 10, step 1) adapted to the discrete integer space.  Infeasible
points carry infinite cost, so under tight constraints the walk can fail to
ever enter the feasible region -- the NAN rows of Table IV.

The walk is inherently sequential (each proposal depends on the previous
accept/reject), so its per-step candidate set has size one; it still routes
through the shared batched evaluation API of :class:`GenomeOptimizer`.
"""

from __future__ import annotations

import math
from typing import List

from repro.optim.base import GenomeOptimizer


class SimulatedAnnealing(GenomeOptimizer):
    """Discrete-space simulated annealing over level-index genomes."""

    name = "sa"

    def __init__(self, temperature: float = 10.0, step: int = 1,
                 cooling: float = 0.999, restarts: int = 5,
                 seed=None, use_batch: bool = True) -> None:
        super().__init__(seed=seed, use_batch=use_batch)
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        if step < 1:
            raise ValueError("step must be >= 1")
        if not 0.0 < cooling <= 1.0:
            raise ValueError("cooling must be in (0, 1]")
        self.temperature = temperature
        self.step = step
        self.cooling = cooling
        self.restarts = max(1, restarts)

    def _neighbour(self, genome: List[int]) -> List[int]:
        space = self._evaluator.space
        per_step = space.actions_per_step
        candidate = list(genome)
        gene = int(self.rng.integers(len(candidate)))
        head = gene % per_step
        size = space.num_levels if head < 2 else len(space.dataflows)
        delta = self.step if self.rng.random() < 0.5 else -self.step
        candidate[gene] = int(min(max(candidate[gene] + delta, 0), size - 1))
        return candidate

    def _run(self) -> None:
        budget_per_restart = max(1, self._budget // self.restarts)
        while not self.exhausted:
            current = self.random_genome()
            current_cost = self._cost(self.evaluate(current))
            temperature = self.temperature
            for _ in range(budget_per_restart - 1):
                if self.exhausted:
                    return
                candidate = self._neighbour(current)
                candidate_cost = self._cost(self.evaluate(candidate))
                if self._accept(current_cost, candidate_cost, temperature):
                    current, current_cost = candidate, candidate_cost
                temperature *= self.cooling

    @staticmethod
    def _cost(outcome) -> float:
        return outcome.cost if outcome.feasible else float("inf")

    def _accept(self, current: float, candidate: float,
                temperature: float) -> bool:
        if candidate <= current:
            return True
        if math.isinf(candidate):
            return False
        if math.isinf(current):
            return True
        # Scale-free acceptance: costs span orders of magnitude across
        # objectives, so the delta is taken on the relative difference.
        delta = (candidate - current) / max(abs(current), 1e-12)
        return self.rng.random() < math.exp(-delta / max(temperature, 1e-9))
