"""Bayesian optimization with a Gaussian-process surrogate.

A GP with an RBF kernel models the (log-scaled) objective over the
normalized genome space; candidates are scored by expected improvement and
the best candidate from a random pool is evaluated next.  Infeasible points
are kept in the surrogate's training set at a penalized objective so the GP
learns to avoid the infeasible region -- enough to survive the IoT tier,
but (as the paper's Table IV shows) not the extreme IoTx tier, where nearly
every random seed point is infeasible and the surrogate never sees usable
gradient.

The exact GP is cubic in sample count, so the fit set is capped at the best
and most recent points; the cap is far above the epoch budgets used in the
benches.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
from scipy.linalg import cho_factor, cho_solve
from scipy.stats import norm

from repro.optim.base import GenomeOptimizer


class BayesianOptimization(GenomeOptimizer):
    """GP-EI Bayesian optimization over the discrete genome space."""

    name = "bayesian"

    def __init__(self, initial_samples: int = 20, candidate_pool: int = 256,
                 length_scale: float = 0.4, noise: float = 1e-4,
                 max_fit_points: int = 400, infeasible_penalty: float = 4.0,
                 seed=None, use_batch: bool = True) -> None:
        super().__init__(seed=seed, use_batch=use_batch)
        if initial_samples < 2:
            raise ValueError("initial_samples must be >= 2")
        self.initial_samples = initial_samples
        self.candidate_pool = candidate_pool
        self.length_scale = length_scale
        self.noise = noise
        self.max_fit_points = max_fit_points
        self.infeasible_penalty = infeasible_penalty
        self._features: List[np.ndarray] = []
        self._targets: List[float] = []

    # ------------------------------------------------------------------
    def _encode(self, genome: List[int]) -> np.ndarray:
        space = self._evaluator.space
        per_step = space.actions_per_step
        scales = []
        for i in range(len(genome)):
            head = i % per_step
            size = space.num_levels if head < 2 else len(space.dataflows)
            scales.append(max(size - 1, 1))
        return np.asarray(genome, dtype=np.float64) / np.asarray(scales)

    def _observe(self, genome: List[int]) -> None:
        self._record(genome, self.evaluate(genome))

    def _record(self, genome: List[int], outcome) -> None:
        """Fold one evaluated genome into the surrogate's training set."""
        if outcome.feasible:
            target = np.log10(max(outcome.cost, 1e-30))
        else:
            reference = (np.max(self._targets) if self._targets else 0.0)
            target = reference + self.infeasible_penalty
        self._features.append(self._encode(genome))
        self._targets.append(float(target))

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq = (
            np.sum(a ** 2, axis=1)[:, None]
            + np.sum(b ** 2, axis=1)[None, :]
            - 2.0 * a @ b.T
        )
        return np.exp(-0.5 * np.maximum(sq, 0.0) / self.length_scale ** 2)

    def _fit_subset(self):
        order = np.argsort(self._targets)
        keep = list(order[: self.max_fit_points // 2])
        recent = range(max(0, len(self._targets) - self.max_fit_points // 2),
                       len(self._targets))
        keep.extend(i for i in recent if i not in set(keep))
        features = np.asarray([self._features[i] for i in keep])
        targets = np.asarray([self._targets[i] for i in keep])
        return features, targets

    def _expected_improvement(self, candidates: np.ndarray,
                              features: np.ndarray,
                              targets: np.ndarray) -> np.ndarray:
        mean_target = targets.mean()
        std_target = targets.std() + 1e-12
        normalized = (targets - mean_target) / std_target
        gram = self._kernel(features, features)
        gram[np.diag_indices_from(gram)] += self.noise
        factor = cho_factor(gram, lower=True)
        alpha = cho_solve(factor, normalized)
        cross = self._kernel(candidates, features)
        mu = cross @ alpha
        v = cho_solve(factor, cross.T)
        var = np.maximum(1.0 - np.sum(cross.T * v, axis=0), 1e-12)
        sigma = np.sqrt(var)
        best = normalized.min()
        improvement = best - mu
        z = improvement / sigma
        return improvement * norm.cdf(z) + sigma * norm.pdf(z)

    # ------------------------------------------------------------------
    def _run(self) -> None:
        # The seed set is independent draws, so it is scored as one batch;
        # the EI loop below is inherently sequential (each choice depends
        # on the surrogate fitted to everything before it).
        seeds = [self.random_genome()
                 for _ in range(min(self.initial_samples, self._budget))]
        for genome, outcome in zip(seeds, self.evaluate_batch(seeds)):
            self._record(genome, outcome)
        while not self.exhausted:
            features, targets = self._fit_subset()
            pool = [self.random_genome() for _ in range(self.candidate_pool)]
            encoded = np.asarray([self._encode(g) for g in pool])
            scores = self._expected_improvement(encoded, features, targets)
            self._observe(pool[int(np.argmax(scores))])
