"""Random search: sample ``Eps`` design points uniformly, keep the best.

A surprisingly strong baseline in many hyper-parameter problems (Bergstra &
Bengio 2012), but blind to the constraint structure: under tight budgets
almost all uniform samples violate the constraint, which is why the paper's
Table IV shows NAN for IoT/IoTx rows.
"""

from __future__ import annotations

from repro.optim.base import GenomeOptimizer


class RandomSearch(GenomeOptimizer):
    """Uniform sampling over the level-index genome space.

    Samples are drawn in budget-sized chunks and scored through the
    batched estimator -- the sampling order (hence the result for a given
    seed) is identical to the old one-point-at-a-time loop.
    """

    name = "random"

    def _run(self) -> None:
        while not self.exhausted:
            chunk = min(self.batch_size, self._budget - self._spent)
            self.evaluate_batch(
                [self.random_genome() for _ in range(chunk)])
