"""Random search: sample ``Eps`` design points uniformly, keep the best.

A surprisingly strong baseline in many hyper-parameter problems (Bergstra &
Bengio 2012), but blind to the constraint structure: under tight budgets
almost all uniform samples violate the constraint, which is why the paper's
Table IV shows NAN for IoT/IoTx rows.
"""

from __future__ import annotations

from repro.optim.base import GenomeOptimizer


class RandomSearch(GenomeOptimizer):
    """Uniform sampling over the level-index genome space."""

    name = "random"

    def _run(self) -> None:
        while not self.exhausted:
            self.evaluate(self.random_genome())
