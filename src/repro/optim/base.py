"""Shared interface for the genome-space baseline optimizers."""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from repro.core.evaluator import DesignPointEvaluator, EvalResult
from repro.rl.common import SearchResult


class GenomeOptimizer:
    """Base class: optimize a level-index genome under a budget of ``Eps``
    whole-design-point evaluations.

    Subclasses implement :meth:`_run`; the base class provides bookkeeping
    (best-feasible tracking, convergence history, wall time) so every
    method reports through the same :class:`SearchResult`.
    """

    name = "genome-optimizer"

    def __init__(self, seed: Optional[int] = None) -> None:
        self.rng = np.random.default_rng(seed)
        self._result: Optional[SearchResult] = None
        self._evaluator: Optional[DesignPointEvaluator] = None
        self._budget = 0
        self._spent = 0

    # ------------------------------------------------------------------
    def search(self, evaluator: DesignPointEvaluator,
               epochs: int) -> SearchResult:
        """Spend ``epochs`` design-point evaluations; return the outcome."""
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self._evaluator = evaluator
        self._budget = epochs
        self._spent = 0
        self._result = SearchResult(algorithm=self.name)
        started = time.perf_counter()
        self._run()
        result = self._result
        result.wall_time_s = time.perf_counter() - started
        result.evaluations = self._spent
        result.episodes = self._spent
        return result

    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        return self._spent >= self._budget

    def evaluate(self, genome: Sequence[int]) -> EvalResult:
        """Evaluate one genome, charging the budget and updating the best.

        Raises:
            RuntimeError: if called after the budget is exhausted (guard
            with :attr:`exhausted` in the subclass loop).
        """
        if self.exhausted:
            raise RuntimeError("evaluation budget exhausted")
        outcome = self._evaluator.evaluate_genome(genome)
        self._spent += 1
        result = self._result
        if outcome.feasible and (result.best_cost is None
                                 or outcome.cost < result.best_cost):
            result.best_cost = outcome.cost
            result.best_genome = list(genome)
            result.best_assignments = tuple(
                self._evaluator.decode_genome(genome))
        result.record(result.best_cost)
        return outcome

    def random_genome(self) -> List[int]:
        """A uniformly random genome."""
        space = self._evaluator.space
        genome: List[int] = []
        for _ in range(len(self._evaluator.layers)):
            genome.append(int(self.rng.integers(space.num_levels)))
            genome.append(int(self.rng.integers(space.num_levels)))
            if space.is_mix:
                genome.append(int(self.rng.integers(len(space.dataflows))))
        return genome

    def _run(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError
