"""Shared interface for the genome-space baseline optimizers."""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from repro.core.evaluator import DesignPointEvaluator, EvalResult
from repro.rl.common import SearchResult


class GenomeOptimizer:
    """Base class: optimize a level-index genome under a budget of ``Eps``
    whole-design-point evaluations.

    Subclasses implement :meth:`_run`; the base class provides bookkeeping
    (best-feasible tracking, convergence history, wall time) so every
    method reports through the same :class:`SearchResult`.
    """

    name = "genome-optimizer"

    #: Candidate-set size per batched estimator call for the streaming
    #: methods (random / grid); population methods batch one generation.
    batch_size = 256

    def __init__(self, seed: Optional[int] = None,
                 use_batch: bool = True) -> None:
        self.rng = np.random.default_rng(seed)
        self.use_batch = use_batch
        self._result: Optional[SearchResult] = None
        self._evaluator: Optional[DesignPointEvaluator] = None
        self._budget = 0
        self._spent = 0

    # ------------------------------------------------------------------
    def search(self, evaluator: DesignPointEvaluator,
               epochs: int) -> SearchResult:
        """Spend ``epochs`` design-point evaluations; return the outcome."""
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self._evaluator = evaluator
        self._budget = epochs
        self._spent = 0
        self._result = SearchResult(algorithm=self.name)
        started = time.perf_counter()
        hits_before = getattr(evaluator, "cache_hits", 0)
        self._run()
        result = self._result
        result.wall_time_s = time.perf_counter() - started
        result.evaluations = self._spent
        result.episodes = self._spent
        # Duplicate candidates the evaluator's population memo served
        # without re-hitting the estimator during this search.
        result.cache_hits = getattr(evaluator, "cache_hits", 0) - hits_before
        return result

    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        return self._spent >= self._budget

    def evaluate(self, genome: Sequence[int]) -> EvalResult:
        """Evaluate one genome, charging the budget and updating the best.

        Raises:
            RuntimeError: if called after the budget is exhausted (guard
            with :attr:`exhausted` in the subclass loop).
        """
        return self.evaluate_batch([genome])[0]

    def evaluate_batch(
        self, genomes: Sequence[Sequence[int]]
    ) -> List[EvalResult]:
        """Evaluate a candidate set as one batched estimator call (the
        call a parallel backend shards across workers when one is
        installed on the cost model -- never changing the results).

        The set is truncated to the remaining budget (mirroring the scalar
        loop, which stopped evaluating mid-set when the budget ran out);
        best-tracking and the convergence history are updated genome by
        genome in order, so results are identical to sequential
        :meth:`evaluate` calls.

        Single-genome sets take the scalar path even with ``use_batch``
        on: for sequential walks (SA proposals, Bayesian's EI loop) the
        per-layer LRU cache beats batch-of-one numpy dispatch, and the
        two backends return identical numbers anyway.

        Raises:
            RuntimeError: if called after the budget is exhausted.
        """
        if self.exhausted:
            raise RuntimeError("evaluation budget exhausted")
        genomes = list(genomes)[: self._budget - self._spent]
        if self.use_batch and len(genomes) > 1:
            outcomes = self._evaluator.evaluate_population(genomes)
        else:
            outcomes = [self._evaluator.evaluate_genome(genome)
                        for genome in genomes]
        result = self._result
        for genome, outcome in zip(genomes, outcomes):
            self._spent += 1
            if outcome.feasible and (result.best_cost is None
                                     or outcome.cost < result.best_cost):
                result.best_cost = outcome.cost
                result.best_genome = list(genome)
                result.best_assignments = tuple(
                    self._evaluator.decode_genome(genome))
            result.record(result.best_cost)
        return outcomes

    def random_genome(self) -> List[int]:
        """A uniformly random genome."""
        space = self._evaluator.space
        genome: List[int] = []
        for _ in range(len(self._evaluator.layers)):
            genome.append(int(self.rng.integers(space.num_levels)))
            genome.append(int(self.rng.integers(space.num_levels)))
            if space.is_mix:
                genome.append(int(self.rng.integers(len(space.dataflows))))
        return genome

    # Shared breeding operators (the GA-family methods) ----------------
    def uniform_crossover(self, a: Sequence[int],
                          b: Sequence[int]) -> List[int]:
        """Uniform blending: each gene comes from either parent with
        probability 1/2 (one RNG draw per gene)."""
        child = list(a)
        for i in range(len(child)):
            if self.rng.random() < 0.5:
                child[i] = b[i]
        return child

    def resample_mutation(self, genome: Sequence[int],
                          rate: float) -> List[int]:
        """Per-gene uniform resampling at ``rate``, respecting the gene
        layout: the two level genes draw from ``num_levels``, the MIX
        style gene from the dataflow list."""
        space = self._evaluator.space
        per_step = space.actions_per_step
        mutated = list(genome)
        for i in range(len(mutated)):
            if self.rng.random() < rate:
                head = i % per_step
                size = (space.num_levels if head < 2
                        else len(space.dataflows))
                mutated[i] = int(self.rng.integers(size))
        return mutated

    def _run(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError
