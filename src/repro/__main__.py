"""Command-line interface: ``python -m repro <command>``.

Commands:
    models               List the workload zoo with layer/MAC statistics.
    evaluate             Run the cost model on a uniform design point.
    search               Run the full two-stage ConfuciuX pipeline.

Examples::

    python -m repro models
    python -m repro evaluate --model resnet50 --pes 64 --buffer 99
    python -m repro search --model mobilenet_v2 --platform iot \
        --objective latency --epochs 300
"""

from __future__ import annotations

import argparse
import sys

from repro.core.reporting import format_table
from repro.costmodel import CostModel
from repro.models import get_model, list_models
from repro.models.layers import summarize


def cmd_models(_args: argparse.Namespace) -> int:
    rows = []
    for name in list_models():
        layers = get_model(name)
        summary = summarize(name, layers)
        rows.append([
            name,
            summary.num_layers,
            f"{summary.total_macs:.2E}",
            f"{summary.total_weights:.2E}",
            ", ".join(f"{k}:{v}"
                      for k, v in summary.layer_type_counts.items()),
        ])
    print(format_table(
        ["model", "layers", "MACs", "weights", "layer types"], rows,
        title="Workload zoo"))
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    layers = get_model(args.model)
    cost_model = CostModel()
    report = cost_model.evaluate_model(
        layers, [(args.pes, args.buffer)] * len(layers),
        dataflow=args.dataflow)
    print(format_table(
        ["metric", "value"],
        [
            ["layers", len(layers)],
            ["latency (cycles)", f"{report.latency_cycles:.3E}"],
            ["energy (nJ)", f"{report.energy_nj:.3E}"],
            ["area (um2)", f"{report.area_um2:.3E}"],
            ["power (mW)", f"{report.power_mw:.3E}"],
        ],
        title=f"{args.model} @ uniform (PE={args.pes}, "
              f"Buf={args.buffer}B), {args.dataflow}-style, LP"))
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    from repro.core.confuciux import ConfuciuX

    layers = get_model(args.model)
    if args.layers:
        layers = layers[: args.layers]
    pipeline = ConfuciuX(
        layers,
        objective=args.objective,
        dataflow=None if args.mix else args.dataflow,
        mix=args.mix,
        constraint_kind=args.constraint,
        platform=args.platform,
        policy=args.policy,
        seed=args.seed,
    )
    result = pipeline.run(global_epochs=args.epochs,
                          finetune_generations=args.finetune)
    if result.best_cost is None:
        print("No feasible assignment found; increase --epochs.")
        return 1
    impr1, impr2 = result.improvement_fractions()
    print(format_table(
        ["stage", args.objective, "improvement"],
        [
            ["first valid", f"{result.initial_valid_cost:.3E}", "-"],
            ["global search", f"{result.global_cost:.3E}",
             f"{100 * impr1:.1f}%" if impr1 is not None else "-"],
            ["fine-tuned", f"{result.best_cost:.3E}",
             f"{100 * impr2:.1f}%" if impr2 is not None else "-"],
        ],
        title=f"ConfuciuX on {args.model} ({len(layers)} layers), "
              f"{args.constraint}:{args.platform}"))
    print()
    print(result.utilization())
    rows = []
    for i, (layer, assignment) in enumerate(zip(layers,
                                                result.best_assignments)):
        style = assignment[2] if len(assignment) == 3 else args.dataflow
        rows.append([i + 1, layer.name, style, assignment[0],
                     assignment[1]])
    print()
    print(format_table(["#", "layer", "dataflow", "PEs", "L1 bytes"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the workload zoo")

    evaluate = sub.add_parser("evaluate",
                              help="cost-model a uniform design point")
    evaluate.add_argument("--model", default="mobilenet_v2",
                          choices=list_models())
    evaluate.add_argument("--dataflow", default="dla",
                          choices=["dla", "eye", "shi"])
    evaluate.add_argument("--pes", type=int, default=16)
    evaluate.add_argument("--buffer", type=int, default=39)

    search = sub.add_parser("search", help="run the ConfuciuX pipeline")
    search.add_argument("--model", default="mobilenet_v2",
                        choices=list_models())
    search.add_argument("--dataflow", default="dla",
                        choices=["dla", "eye", "shi"])
    search.add_argument("--mix", action="store_true",
                        help="co-search the dataflow per layer")
    search.add_argument("--objective", default="latency",
                        choices=["latency", "energy", "edp"])
    search.add_argument("--constraint", default="area",
                        choices=["area", "power"])
    search.add_argument("--platform", default="iot",
                        choices=["unlimited", "cloud", "iot", "iotx"])
    search.add_argument("--policy", default="rnn", choices=["rnn", "mlp"])
    search.add_argument("--epochs", type=int, default=300)
    search.add_argument("--finetune", type=int, default=100)
    search.add_argument("--layers", type=int, default=0,
                        help="restrict to the first N layers (0 = all)")
    search.add_argument("--seed", type=int, default=0)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "models": cmd_models,
        "evaluate": cmd_evaluate,
        "search": cmd_search,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
