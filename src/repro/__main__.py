"""Command-line interface: ``python -m repro <command>``.

Commands:
    models               List the workload zoo with layer/MAC statistics.
    methods              List every registered search method.
    evaluate             Run the cost model on a uniform design point.
    search               Run any registered search method on one task.
    compare              Run several methods on the same task and grid
                         the results.
    serve                Run the search service (job scheduler + result
                         cache) behind a local TCP port.
    worker               Run a distributed-execution node agent that
                         joins a coordinator's fleet.
    submit               Submit one search to a running service.
    jobs                 List (or cancel) a running service's jobs.
    cache                Inspect or clear the content-addressed result
                         cache (via a server, or directly on disk).

Examples::

    python -m repro models
    python -m repro methods
    python -m repro evaluate --model resnet50 --pes 64 --buffer 99
    python -m repro search --model mobilenet_v2 --method confuciux \
        --platform iot --objective latency --budget 300
    python -m repro search --model mnasnet --method sa --budget 500
    python -m repro search --model mobilenet_v2 --pareto --budget 2000
    python -m repro search --method ga \
        --objective weighted:latency=0.5,energy=0.5
    python -m repro compare --model mobilenet_v2 \
        --methods random,ga,ppo2,reinforce --budget 150
    python -m repro serve --port 7661 --executor process --workers 4
    python -m repro worker --connect 127.0.0.1:7662
    python -m repro submit --model mnasnet --method sa --budget 200
    python -m repro jobs
    python -m repro cache --stats
"""

from __future__ import annotations

import argparse
import sys

from repro.core.reporting import format_table
from repro.costmodel import CostModel
from repro.models import get_model, list_models
from repro.models.layers import summarize
from repro.search import (
    ProgressReporter,
    SearchSession,
    SearchSpec,
    list_methods,
    method_names,
)


def cmd_models(_args: argparse.Namespace) -> int:
    rows = []
    for name in list_models():
        layers = get_model(name)
        summary = summarize(name, layers)
        rows.append([
            name,
            summary.num_layers,
            f"{summary.total_macs:.2E}",
            f"{summary.total_weights:.2E}",
            ", ".join(f"{k}:{v}"
                      for k, v in summary.layer_type_counts.items()),
        ])
    print(format_table(
        ["model", "layers", "MACs", "weights", "layer types"], rows,
        title="Workload zoo"))
    return 0


def cmd_methods(_args: argparse.Namespace) -> int:
    rows = []
    for info in list_methods():
        capabilities = []
        if info.batchable:
            capabilities.append("batchable")
        if info.supports_finetune:
            capabilities.append("fine-tunes")
        if info.variant_of:
            capabilities.append(f"variant of {info.variant_of}")
        rows.append([info.name, info.kind, ", ".join(capabilities) or "-",
                     info.description])
    print(format_table(
        ["method", "kind", "capabilities", "description"], rows,
        title="Registered search methods"))
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    layers = get_model(args.model)
    cost_model = CostModel()
    report = cost_model.evaluate_model(
        layers, [(args.pes, args.buffer)] * len(layers),
        dataflow=args.dataflow)
    print(format_table(
        ["metric", "value"],
        [
            ["layers", len(layers)],
            ["latency (cycles)", f"{report.latency_cycles:.3E}"],
            ["energy (nJ)", f"{report.energy_nj:.3E}"],
            ["area (um2)", f"{report.area_um2:.3E}"],
            ["power (mW)", f"{report.power_mw:.3E}"],
        ],
        title=f"{args.model} @ uniform (PE={args.pes}, "
              f"Buf={args.buffer}B), {args.dataflow}-style, LP"))
    return 0


def _objective_from_args(args: argparse.Namespace) -> str:
    """The effective objective spec string.

    ``--pareto`` turns a bare comma list (``latency,energy``) into a
    ``multi:`` spec and defaults to the latency/energy trade-off when no
    objective was given; otherwise the string is passed through to the
    objectives registry (names, ``weighted:...``, ``multi:...``).
    """
    objective = args.objective
    if getattr(args, "pareto", False):
        objective = objective or "latency,energy"
        if "," in objective and ":" not in objective:
            objective = "multi:" + objective
    return objective or "latency"


def _dispatch_min_batch_arg(value: str):
    """``--dispatch-min-batch`` accepts an int or the literal "auto"
    (runtime break-even calibration)."""
    if value.strip().lower() == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}") from None


def _spec_from_args(args: argparse.Namespace, method: str) -> SearchSpec:
    try:
        return SearchSpec(
            model=args.model,
            method=method,
            objective=_objective_from_args(args),
            dataflow=args.dataflow,
            constraint_kind=args.constraint,
            platform=args.platform,
            budget=args.budget,
            seed=args.seed,
            mix=args.mix,
            layer_slice=args.layers or None,
            finetune=args.finetune,
            executor=args.executor,
            workers=args.workers,
            nodes=args.nodes,
            dispatch_min_batch=args.dispatch_min_batch,
            envs=args.envs,
            task_timeout_s=args.task_timeout_s,
            kernel=args.kernel,
            autotune=args.autotune,
        )
    except ValueError as error:
        # Free-form spec fields (--objective most of all) are validated
        # by SearchSpec, not argparse; keep the CLI's clean-exit
        # contract rather than surfacing a traceback.
        raise SystemExit(f"repro: error: {error}") from None


def _print_pareto_front(result) -> None:
    """The non-dominated front of a multi-objective search."""
    front = result.pareto_front
    names = result.result.extra.get(
        "objective_names",
        sorted(front[0]["objectives"]) if front else [])
    rows = []
    for index, point in enumerate(front, start=1):
        rows.append([index] + [f"{point['objectives'][name]:.3E}"
                               for name in names])
    print()
    print(format_table(
        ["#"] + names, rows,
        title=f"Pareto front ({len(front)} non-dominated points)"))


def _print_two_stage(result, args) -> None:
    """The classic ConfuciuX stage table (from the session detail)."""
    from repro.objectives import objective_cost_label

    detail = result.detail
    impr1, impr2 = detail.improvement_fractions()
    print(format_table(
        ["stage", objective_cost_label(_objective_from_args(args)),
         "improvement"],
        [
            ["first valid", f"{detail.initial_valid_cost:.3E}", "-"],
            ["global search", f"{detail.global_cost:.3E}",
             f"{100 * impr1:.1f}%" if impr1 is not None else "-"],
            ["fine-tuned", f"{detail.best_cost:.3E}",
             f"{100 * impr2:.1f}%" if impr2 is not None else "-"],
        ],
        title=f"ConfuciuX on {args.model}, "
              f"{args.constraint}:{args.platform}"))
    print()
    print(detail.utilization())


def cmd_search(args: argparse.Namespace) -> int:
    # --pareto selects the NSGA-II searcher only when no explicit
    # --method was given (the --method default is None, so an explicit
    # "--method confuciux" is distinguishable and wins).
    method = args.method or ("pareto-ga" if args.pareto else "confuciux")
    spec = _spec_from_args(args, method)
    session = SearchSession(spec)
    callbacks = [ProgressReporter(every=args.progress)] \
        if args.progress else []
    result = session.run(callbacks=callbacks)
    if not result.feasible:
        print("No feasible assignment found; increase --budget.")
        return 1
    if result.detail is not None:
        _print_two_stage(result, args)
    else:
        from repro.objectives import objective_cost_label

        print(format_table(
            ["metric", "value"],
            [
                ["method", spec.method],
                [f"best {objective_cost_label(spec.objective)}",
                 f"{result.best_cost:.3E}"],
                ["evaluations", result.result.evaluations],
                ["wall time", f"{result.result.wall_time_s:.2f}s"],
            ],
            title=result.summary()))
    if result.pareto_front is not None:
        _print_pareto_front(result)
    layers = spec.task().layers()
    rows = []
    for i, (layer, assignment) in enumerate(zip(layers,
                                                result.best_assignments)):
        style = assignment[2] if len(assignment) == 3 else args.dataflow
        rows.append([i + 1, layer.name, style, assignment[0],
                     assignment[1]])
    print()
    print(format_table(["#", "layer", "dataflow", "PEs", "L1 bytes"], rows))
    if args.save:
        result.save(args.save)
        print(f"\nSaved result (spec included) to {args.save}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.parallel import ParallelCoordinator

    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    cost_model = CostModel()
    rows = []
    callbacks = []
    first = _spec_from_args(args, methods[0]) if methods else None
    if first is not None and first.resolved_executor() != "serial":
        # One keep-alive coordinator: the worker pool spawns once and
        # serves every method of the grid, with the spec-resolved
        # adaptive-dispatch threshold (--dispatch-min-batch /
        # $REPRO_DISPATCH_MIN / the measured default).
        callbacks = [ParallelCoordinator(
            first.resolved_executor(), first.resolved_workers(),
            nodes=first.resolved_nodes(),
            keep_alive=True,
            min_batch_per_worker=first.resolved_dispatch_min_batch(),
            task_timeout_s=first.resolved_task_timeout_s(),
            kernel=first.resolved_kernel(),
            autotune=first.resolved_autotune(),
            auto_dispatch=first.dispatch_is_auto())]
    try:
        for method in methods:
            spec = _spec_from_args(args, method)
            result = SearchSession(spec, cost_model=cost_model).run(
                callbacks=callbacks)
            rows.append([
                method,
                result.result.format_cost(),
                result.result.evaluations,
                f"{result.result.wall_time_s:.2f}s",
            ])
    finally:
        for callback in callbacks:
            callback.close()
    from repro.objectives import objective_cost_label, objective_label

    spec_string = _objective_from_args(args)
    print(format_table(
        ["method", f"best {objective_cost_label(spec_string)}",
         "evaluations", "wall time"],
        rows,
        title=f"{args.model} {objective_label(spec_string)} "
              f"{args.constraint}:{args.platform}, budget {args.budget}"))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ResultStore, SearchServer, start_transport

    store = None if args.no_cache else ResultStore(root=args.cache_dir)
    server = SearchServer(
        store=store,
        max_concurrent=args.max_concurrent,
        executor=args.executor,
        workers=args.workers,
        nodes=args.nodes,
        kernel=args.kernel,
        progress_every=args.progress_every,
    )
    transport = start_transport(server, host=args.host, port=args.port,
                                in_thread=False)
    host, port = transport.server_address[:2]
    print(f"repro service on {host}:{port} "
          f"(executor={server.executor}, "
          f"max_concurrent={args.max_concurrent}, "
          f"cache={'off' if store is None else store.root})",
          flush=True)
    try:
        transport.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        transport.server_close()
        server.close()
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    from repro.parallel import run_worker_agent

    print(f"repro worker connecting to {args.connect} "
          f"(supervised; Ctrl-C to stop)", flush=True)
    return run_worker_agent(args.connect, name=args.name)


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    method = args.method or "confuciux"
    spec = _spec_from_args(args, method)
    with ServiceClient(host=args.host, port=args.port,
                       connect_timeout=args.connect_timeout) as client:
        if args.watch:
            final = None
            for message in client.watch(spec, force=args.force):
                if "ok" in message:
                    final = message
                else:
                    event = message["event"]
                    detail = {k: v for k, v in event.items()
                              if k not in ("seq", "type", "job")}
                    print(f"[{event['job']}] {event['type']} {detail}",
                          flush=True)
            job = final["job"]
        elif args.no_wait:
            job = client.submit(spec, force=args.force, wait=False)
            print(f"submitted {job['id']} ({job['state']})")
            return 0
        else:
            job = client.submit(spec, force=args.force, wait=False)
            client.result(job["id"])
            job = client.status(job["id"])
        print(format_table(
            ["field", "value"],
            [
                ["job", job["id"]],
                ["state", job["state"]],
                ["cached", job["cached"]],
                ["method", job["method"]],
                ["model", job["model"]],
                ["best cost", job["best_cost"]],
                ["key", job["key"][:16]],
            ],
            title=f"{method} on {args.model} via {args.host}:{args.port}"))
        if args.save and job["state"] == "DONE":
            result = client.result(job["id"])
            result.save(args.save)
            print(f"Saved result (spec included) to {args.save}")
        return 0 if job["state"] == "DONE" else 1


def cmd_jobs(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    with ServiceClient(host=args.host, port=args.port,
                       connect_timeout=args.connect_timeout) as client:
        if args.cancel:
            cancelled = client.cancel(args.cancel)
            print(f"cancel {args.cancel}: "
                  f"{'requested' if cancelled else 'no effect'}")
            return 0
        rows = []
        for job in client.jobs():
            rows.append([
                job["id"], job["state"],
                "hit" if job["cached"] else "-",
                job["method"], job["model"],
                ("-" if job["best_cost"] is None
                 else f"{job['best_cost']:.3E}"),
                job["key"][:12],
            ])
        stats = client.stats()
    print(format_table(
        ["job", "state", "cache", "method", "model", "best cost", "key"],
        rows,
        title=f"{stats['jobs']} jobs, {stats['executions']} executed "
              f"({args.host}:{args.port}, executor {stats['executor']})"))
    return 0


def _print_cache_stats(stats: dict) -> None:
    print(format_table(
        ["metric", "value"],
        [[key, stats[key]] for key in
         ("root", "entries", "bytes", "hits", "memory_hits", "misses",
          "puts", "evictions", "bypasses", "corrupt_dropped")
         if key in stats],
        title="Result cache"))


def cmd_cache(args: argparse.Namespace) -> int:
    if args.port is not None:
        from repro.service import ServiceClient

        with ServiceClient(host=args.host, port=args.port,
                           connect_timeout=args.connect_timeout) as client:
            if args.clear:
                print(f"cleared {client.cache_clear()} entries")
                return 0
            _print_cache_stats(client.cache_stats())
        return 0
    from repro.service import ResultStore

    store = ResultStore(root=args.cache_dir)
    if args.clear:
        print(f"cleared {store.clear()} entries")
        return 0
    _print_cache_stats(store.stats())
    return 0


def _add_client_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.service.transport import DEFAULT_PORT

    parser.add_argument("--host", default="127.0.0.1",
                        help="service host (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"service port (default: {DEFAULT_PORT})")
    parser.add_argument("--connect-timeout", type=float, default=10.0,
                        dest="connect_timeout",
                        help="seconds to retry the initial connection "
                             "(covers the serve-then-submit startup race)")


def _add_task_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="mobilenet_v2",
                        choices=list_models())
    parser.add_argument("--dataflow", default="dla",
                        choices=["dla", "eye", "shi"])
    parser.add_argument("--mix", action="store_true",
                        help="co-search the dataflow per layer")
    parser.add_argument("--objective", default=None,
                        help="objective spec: a registered name (latency, "
                             "energy, edp, area, power, ...), "
                             "weighted:latency=0.5,energy=0.5, or "
                             "multi:latency,energy (default: latency)")
    parser.add_argument("--constraint", default="area",
                        choices=["area", "power"])
    parser.add_argument("--platform", default="iot",
                        choices=["unlimited", "cloud", "iot", "iotx"])
    parser.add_argument("--budget", "--epochs", dest="budget", type=int,
                        default=300,
                        help="search budget (episodes / evaluations)")
    parser.add_argument("--finetune", type=int, default=None,
                        help="stage-2 budget for two-stage methods "
                             "(default: budget // 4)")
    parser.add_argument("--layers", type=int, default=0,
                        help="restrict to the first N layers (0 = all)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--executor", default=None,
                        choices=["serial", "thread", "process", "chaos",
                                 "distributed"],
                        help="population-evaluation backend (default: "
                             "$REPRO_EXECUTOR or serial; results are "
                             "bit-identical across backends; chaos is "
                             "process with deterministic fault injection "
                             "from $REPRO_FAULTS or a seeded default; "
                             "distributed shards over repro worker node "
                             "agents)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count for parallel executors "
                             "(default: $REPRO_WORKERS, else available "
                             "cores capped at 8)")
    parser.add_argument("--nodes", type=int, default=None,
                        help="node-fleet size for --executor distributed "
                             "(default: $REPRO_NODES or 2; self-spawns "
                             "localhost agents unless $REPRO_BIND names "
                             "a listen address for external repro "
                             "worker agents)")
    parser.add_argument("--dispatch-min-batch",
                        type=_dispatch_min_batch_arg, default=None,
                        dest="dispatch_min_batch",
                        help="adaptive dispatch: batches below this many "
                             "elements per worker run in-process "
                             "(default: $REPRO_DISPATCH_MIN or the "
                             "measured break-even; 0 always shards; "
                             "'auto' calibrates the crossover at "
                             "runtime by timing the first batches)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        dest="task_timeout_s",
                        help="per-batch deadline in seconds for the "
                             "process backend: hung workers are "
                             "terminated and their shards re-dispatched "
                             "(default: $REPRO_TASK_TIMEOUT or disabled; "
                             "0 disables; recovery never changes results)")
    parser.add_argument("--envs", type=int, default=None,
                        help="lockstep episodes per wave for episodic-RL "
                             "methods (default: $REPRO_ENVS or 1; 1 is "
                             "bit-identical to scalar stepping, >1 is a "
                             "faster, reproducible scenario -- see "
                             "BENCH_rl.json)")
    parser.add_argument("--kernel", default=None,
                        choices=["batched", "fused", "fused32",
                                 "fused-jit", "auto"],
                        help="cost-model compute kernel (default: "
                             "$REPRO_KERNEL or batched; fused is "
                             "bit-identical and faster, fused32 trades "
                             "~1e-7 relative error for more speed, "
                             "fused-jit needs numba installed, auto "
                             "micro-probes batched vs fused at session "
                             "start -- see PERFORMANCE.md)")
    parser.add_argument("--autotune", action="store_true", default=None,
                        help="profile-guided shard planning: size "
                             "initial shards to each worker/node's "
                             "measured rows/sec instead of uniform "
                             "round-robin (default: $REPRO_AUTOTUNE or "
                             "off; scheduling only -- results stay "
                             "bit-identical)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the workload zoo")
    sub.add_parser("methods", help="list registered search methods")

    evaluate = sub.add_parser("evaluate",
                              help="cost-model a uniform design point")
    evaluate.add_argument("--model", default="mobilenet_v2",
                          choices=list_models())
    evaluate.add_argument("--dataflow", default="dla",
                          choices=["dla", "eye", "shi"])
    evaluate.add_argument("--pes", type=int, default=16)
    evaluate.add_argument("--buffer", type=int, default=39)

    search = sub.add_parser("search",
                            help="run any registered search method")
    search.add_argument("--method", default=None,
                        choices=method_names(),
                        help="registered search method (default: "
                             "confuciux, or pareto-ga under --pareto)")
    search.add_argument("--progress", type=int, default=0,
                        help="print progress every N steps (0 = off)")
    search.add_argument("--save", default=None,
                        help="write the SessionResult JSON here")
    search.add_argument("--pareto", action="store_true",
                        help="multi-objective search: runs pareto-ga "
                             "(unless --method overrides) on "
                             "multi:latency,energy by default; a bare "
                             "comma list in --objective becomes a "
                             "multi: spec; prints the Pareto front")
    _add_task_arguments(search)

    compare = sub.add_parser("compare",
                             help="run several methods on one task")
    compare.add_argument("--methods",
                         default="random,ga,ppo2,reinforce",
                         help="comma-separated registered method names")
    _add_task_arguments(compare)

    from repro.service.transport import DEFAULT_PORT

    serve = sub.add_parser("serve",
                           help="run the search service in the foreground")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                       help=f"TCP port (default: {DEFAULT_PORT}; 0 binds "
                            "an ephemeral port and prints it)")
    serve.add_argument("--max-concurrent", type=int, default=2,
                       dest="max_concurrent",
                       help="sessions in flight at once (default: 2)")
    serve.add_argument("--executor", default=None,
                       choices=["serial", "thread", "process", "chaos",
                                "distributed"],
                       help="shared pool backend for every job (default: "
                            "$REPRO_EXECUTOR or serial); non-serial pools "
                            "stay warm across jobs")
    serve.add_argument("--workers", type=int, default=None,
                       help="pool worker count (default: $REPRO_WORKERS "
                            "or auto)")
    serve.add_argument("--nodes", type=int, default=None,
                       help="node-fleet size for --executor distributed "
                            "(default: $REPRO_NODES or 2)")
    serve.add_argument("--kernel", default=None,
                       choices=["batched", "fused", "fused32",
                                "fused-jit"],
                       help="cost-model compute kernel for the shared "
                            "pool (default: $REPRO_KERNEL or batched)")
    serve.add_argument("--cache-dir", default=None, dest="cache_dir",
                       help="result-cache root (default: $REPRO_CACHE_DIR "
                            "or ~/.cache/repro/results)")
    serve.add_argument("--no-cache", action="store_true", dest="no_cache",
                       help="disable the result cache entirely")
    serve.add_argument("--progress-every", type=int, default=10,
                       dest="progress_every",
                       help="emit a job step event every N steps")

    worker = sub.add_parser(
        "worker",
        help="run a distributed-execution node agent")
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address to join (a session or "
                             "service running with --executor "
                             "distributed and $REPRO_BIND set)")
    worker.add_argument("--name", default=None,
                        help="agent name used in logs and crash "
                             "diagnostics (default: repro-node-ext-<pid>)")

    submit = sub.add_parser("submit",
                            help="submit one search to a running service")
    submit.add_argument("--method", default=None, choices=method_names(),
                        help="registered search method "
                             "(default: confuciux)")
    submit.add_argument("--force", action="store_true",
                        help="bypass the cache and overwrite its entry")
    submit.add_argument("--watch", action="store_true",
                        help="stream the job's progress events")
    submit.add_argument("--no-wait", action="store_true", dest="no_wait",
                        help="return the job id immediately")
    submit.add_argument("--save", default=None,
                        help="write the SessionResult JSON here")
    _add_client_arguments(submit)
    _add_task_arguments(submit)

    jobs = sub.add_parser("jobs",
                          help="list (or cancel) a service's jobs")
    jobs.add_argument("--cancel", default=None, metavar="JOB_ID",
                      help="cancel this job instead of listing")
    _add_client_arguments(jobs)

    cache = sub.add_parser("cache",
                           help="inspect or clear the result cache")
    cache.add_argument("--stats", action="store_true",
                       help="print cache statistics (the default action)")
    cache.add_argument("--clear", action="store_true",
                       help="evict every cached result")
    cache.add_argument("--cache-dir", default=None, dest="cache_dir",
                       help="operate on this on-disk cache root "
                            "(default: $REPRO_CACHE_DIR)")
    cache.add_argument("--port", type=int, default=None,
                       help="query a running service instead of the "
                            "local directory")
    cache.add_argument("--host", default="127.0.0.1")
    cache.add_argument("--connect-timeout", type=float, default=10.0,
                       dest="connect_timeout")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "models": cmd_models,
        "methods": cmd_methods,
        "evaluate": cmd_evaluate,
        "search": cmd_search,
        "compare": cmd_compare,
        "serve": cmd_serve,
        "worker": cmd_worker,
        "submit": cmd_submit,
        "jobs": cmd_jobs,
        "cache": cmd_cache,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
