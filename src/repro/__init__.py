"""ConfuciuX reproduction: autonomous HW resource assignment for DNN
accelerators via reinforcement learning (Kao, Jeong & Krishna, MICRO 2020).

Public API tour -- the unified session layer::

    import repro

    # One call: any registered method, one frozen config, one result.
    result = repro.explore(model="mobilenet_v2", method="confuciux",
                           objective="latency", platform="iot",
                           budget=300, seed=0)
    print(result.summary(), result.best_cost)
    result.save("run.json")          # spec + result round-trip as JSON

    # The same thing, spelled out, with lifecycle observers:
    spec = repro.SearchSpec(model="mobilenet_v2", method="sa",
                            budget=500, seed=0)
    session = repro.SearchSession(spec)
    result = session.run(callbacks=[repro.ProgressReporter(every=100)])

    # Every search method lives in one registry with capability metadata:
    for info in repro.list_methods():
        print(info.name, info.kind)

The legacy two-stage entry point (``ConfuciuX(...).run(...)``) was
removed in 1.3 after a deprecation cycle; calling it raises guidance
pointing at the session API above (which is bit-identical).

Search as a service: :mod:`repro.service` runs the session layer behind
a long-lived server with a job scheduler and a content-addressed result
cache (``repro serve`` / ``submit`` / ``jobs`` / ``cache`` on the CLI;
:class:`~repro.service.SearchServer` / :class:`~repro.service
.ServiceClient` in Python).  Identical submissions dedup to one run; the
next identical submission is an O(1) cache hit, bit-identical to the run
that produced it.

Subpackages:
    search      -- the unified session API (spec, registry, sessions).
    service     -- the search service (server, job scheduler, result
                   cache, ND-JSON transport + client).
    objectives  -- pluggable objectives (weighted/penalty/multi specs)
                   and the Pareto (non-dominated) utilities.
    parallel    -- serial/thread/process execution backends with
                   shared-memory batch handoff (bit-identical results).
    models      -- DNN workload zoo (layer shapes).
    costmodel   -- the analytical MAESTRO-substitute estimator.
    nn          -- numpy autograd + NN substrate.
    env         -- the RL environment (action space, observation, rewards).
    rl          -- REINFORCE and the six comparison RL algorithms.
    optim       -- grid/random/SA/GA/Bayesian baselines.
    ga          -- stage-2 local fine-tuning GA.
    core        -- orchestrator, constraints, evaluation, reporting.
    analysis    -- the critic-capacity study (Fig. 6).
    experiments -- harness shared by the benchmark suite.
"""

from repro.objectives import (
    MultiObjective,
    Objective,
    PenaltyObjective,
    WeightedObjective,
    list_objectives,
    objective_label,
    register_objective,
    resolve_objective,
)
from repro.models import Layer, LayerType, get_model, list_models
from repro.costmodel import CostModel, HardwareConfig
from repro.env import ActionSpace, HWAssignmentEnv, VectorHWAssignmentEnv
from repro.core.constraints import (
    PlatformConstraint,
    ResourceConstraint,
    platform_constraint,
)
from repro.core.evaluator import DesignPointEvaluator
from repro.rl import RL_ALGORITHMS, Reinforce
from repro.optim import BASELINE_OPTIMIZERS
from repro.ga import LocalGA
from repro.search import (
    CheckpointHook,
    EarlyStopping,
    MethodInfo,
    ProgressReporter,
    SearchObserver,
    SearchSession,
    SearchSpec,
    SessionResult,
    explore,
    get_method,
    list_methods,
    method_names,
    register_method,
)
from repro.parallel import (
    ExecutionError,
    FaultInjected,
    FaultPlan,
    ParallelCoordinator,
    TaskTimeoutError,
    WorkerCrashError,
    make_backend,
)

__version__ = "1.8.0"

__all__ = [
    "Layer",
    "LayerType",
    "get_model",
    "list_models",
    "CostModel",
    "HardwareConfig",
    "ActionSpace",
    "HWAssignmentEnv",
    "VectorHWAssignmentEnv",
    "PlatformConstraint",
    "ResourceConstraint",
    "platform_constraint",
    "DesignPointEvaluator",
    "Reinforce",
    "RL_ALGORITHMS",
    "BASELINE_OPTIMIZERS",
    "LocalGA",
    "ConfuciuX",
    "JointSearch",
    # Unified session API.
    "SearchSpec",
    "SearchSession",
    "SessionResult",
    "explore",
    "MethodInfo",
    "register_method",
    "get_method",
    "list_methods",
    "method_names",
    "SearchObserver",
    "ProgressReporter",
    "EarlyStopping",
    "CheckpointHook",
    # Objectives and Pareto search.
    "Objective",
    "MultiObjective",
    "WeightedObjective",
    "PenaltyObjective",
    "register_objective",
    "resolve_objective",
    "list_objectives",
    "objective_label",
    # Parallel execution and fault tolerance.
    "ParallelCoordinator",
    "make_backend",
    "FaultPlan",
    "ExecutionError",
    "WorkerCrashError",
    "TaskTimeoutError",
    "FaultInjected",
    # Search as a service (lazy; see __getattr__).
    "SearchServer",
    "ServiceClient",
    "ResultStore",
    "result_key",
    "__version__",
]


def __getattr__(name):
    # Lazy: ConfuciuX / JointSearch would otherwise re-enter repro.core
    # while it is importing this package; the service layer is lazy to
    # keep plain library imports free of socket/server modules.
    if name == "ConfuciuX":
        from repro.core.confuciux import ConfuciuX
        return ConfuciuX
    if name == "JointSearch":
        from repro.core.joint import JointSearch
        return JointSearch
    if name in ("SearchServer", "ServiceClient", "ResultStore",
                "result_key"):
        import repro.service

        return getattr(repro.service, name)
    raise AttributeError(name)
