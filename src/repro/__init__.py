"""ConfuciuX reproduction: autonomous HW resource assignment for DNN
accelerators via reinforcement learning (Kao, Jeong & Krishna, MICRO 2020).

Public API tour::

    from repro import ConfuciuX, get_model

    pipeline = ConfuciuX(get_model("mobilenet_v2"), objective="latency",
                         dataflow="dla", platform="iot",
                         constraint_kind="area", seed=0)
    result = pipeline.run(global_epochs=300, finetune_generations=100)
    print(result.best_cost, result.utilization())

Subpackages:
    models      -- DNN workload zoo (layer shapes).
    costmodel   -- the analytical MAESTRO-substitute estimator.
    nn          -- numpy autograd + NN substrate.
    env         -- the RL environment (action space, observation, rewards).
    rl          -- REINFORCE and the six comparison RL algorithms.
    optim       -- grid/random/SA/GA/Bayesian baselines.
    ga          -- stage-2 local fine-tuning GA.
    core        -- orchestrator, constraints, evaluation, reporting.
    analysis    -- the critic-capacity study (Fig. 6).
    experiments -- harness shared by the benchmark suite.
"""

from repro.models import Layer, LayerType, get_model, list_models
from repro.costmodel import CostModel, HardwareConfig
from repro.env import ActionSpace, HWAssignmentEnv
from repro.core.constraints import (
    PlatformConstraint,
    ResourceConstraint,
    platform_constraint,
)
from repro.core.evaluator import DesignPointEvaluator
from repro.rl import RL_ALGORITHMS, Reinforce
from repro.optim import BASELINE_OPTIMIZERS
from repro.ga import LocalGA

__version__ = "1.0.0"

__all__ = [
    "Layer",
    "LayerType",
    "get_model",
    "list_models",
    "CostModel",
    "HardwareConfig",
    "ActionSpace",
    "HWAssignmentEnv",
    "PlatformConstraint",
    "ResourceConstraint",
    "platform_constraint",
    "DesignPointEvaluator",
    "Reinforce",
    "RL_ALGORITHMS",
    "BASELINE_OPTIMIZERS",
    "LocalGA",
    "ConfuciuX",
    "JointSearch",
    "__version__",
]


def __getattr__(name):
    # Lazy: ConfuciuX / JointSearch would otherwise re-enter repro.core
    # while it is importing this package.
    if name == "ConfuciuX":
        from repro.core.confuciux import ConfuciuX
        return ConfuciuX
    if name == "JointSearch":
        from repro.core.joint import JointSearch
        return JointSearch
    raise AttributeError(name)
