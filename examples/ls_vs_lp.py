"""Layer Sequential vs Layer Pipelined deployment (paper Section II-C).

LS runs the model layer-by-layer on one fixed accelerator; LP partitions
the chip so every layer owns its slice and inputs stream through the
pipeline (Fig. 2: T1..T5 in flight at once).  At equal area budget this
script compares the two deployments on both metrics that matter: single-
input latency (where LS's bigger shared array wins) and steady-state
pipeline throughput (where LP's per-layer slices win), plus the per-layer
utilization the uniform LS point wastes.

    python examples/ls_vs_lp.py [--epochs N]
"""

from __future__ import annotations

import argparse

import repro
from repro.core.constraints import platform_constraint
from repro.models import get_model
from repro.core.reporting import ascii_bars, format_table
from repro.costmodel import CostModel
from repro.env.spaces import ActionSpace


def best_ls_point(cost_model, layers, space, area_budget):
    """Exhaustive best uniform design point fitting the LS area budget."""
    best = None
    for pes in space.pe_levels:
        for l1_bytes in space.buf_levels:
            report = cost_model.evaluate_model_ls(layers, pes, l1_bytes,
                                                  "dla")
            if report.area_um2 > area_budget:
                continue
            if best is None or report.latency_cycles < best[0]:
                best = (report.latency_cycles, pes, l1_bytes, report)
    return best


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=200)
    parser.add_argument("--layers", type=int, default=12)
    parser.add_argument("--model", default="mobilenet_v2")
    args = parser.parse_args()

    layers = get_model(args.model)[: args.layers]
    cost_model = CostModel()
    space = ActionSpace.build("dla")

    # The LP budget (Table II IoT tier) also caps the LS accelerator.
    lp_constraint = platform_constraint(layers, "dla", "area", "iot",
                                        cost_model, space)

    ls = best_ls_point(cost_model, layers, space, lp_constraint.budget)
    # The session derives the identical IoT area constraint internally.
    lp = repro.explore(
        model=args.model, method="confuciux", objective="latency",
        dataflow="dla", constraint_kind="area", platform="iot",
        budget=args.epochs, finetune=args.epochs // 4, seed=0,
        layer_slice=args.layers, cost_model=cost_model)

    ls_latency = ls[0]
    # LS is serialized: one input finishes before the next starts.
    ls_interval = ls_latency
    rows = [
        ["LS (best uniform point)",
         f"PE={ls[1]}, Buf={ls[2]}B shared",
         f"{ls_latency:.3E}", f"{1e6 / ls_interval:.2f}"],
    ]
    if lp.best_cost is not None:
        report = cost_model.evaluate_model(layers, lp.best_assignments,
                                           dataflow="dla")
        # LP pipelines inputs: the steady-state initiation interval is
        # the slowest stage, not the sum.
        lp_interval = max(r.latency_cycles for r in report.per_layer)
        rows.append(["LP (ConfuciuX partition)",
                     f"{len(layers)} heterogeneous slices",
                     f"{lp.best_cost:.3E}", f"{1e6 / lp_interval:.2f}"])
        rows.append(["LP vs LS", "",
                     f"{ls_latency / lp.best_cost:.2f}x latency",
                     f"{ls_interval / lp_interval:.1f}x throughput"])
    print(format_table(
        ["deployment", "configuration", "single-input latency (cy)",
         "throughput (inputs/Mcycle)"],
        rows,
        title=f"{args.model} ({len(layers)} layers), IoT area budget "
              f"{lp_constraint.budget:.2E} um2"))

    print()
    print("LS per-layer PE utilization (the over-provisioning the paper "
          "describes):")
    utils = [r.pe_utilization for r in ls[3].per_layer]
    print(ascii_bars(utils,
                     labels=[l.name[:12] for l in layers]))


if __name__ == "__main__":
    main()
