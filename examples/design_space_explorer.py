"""Interactive-ish design-space exploration with the raw cost model.

Shows what ConfuciuX searches over: sweeps (PEs, L1 buffer) for a chosen
layer and dataflow, prints the latency/energy/area contours as text
heatmaps, and reports the Pareto frontier -- the Fig. 4 / Fig. 5 view of
the problem without any search in the loop.

    python examples/design_space_explorer.py --model resnet50 --layer 5
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.costmodel import CostModel
from repro.env.spaces import ActionSpace
from repro.search import SearchSpec


_SHADES = " .:-=+*#%@"


def heatmap(grid: np.ndarray, title: str, space: ActionSpace) -> str:
    """Log-scaled text heatmap: '@' = worst, ' ' = best."""
    logs = np.log10(grid)
    low, high = logs.min(), logs.max()
    span = (high - low) or 1.0
    lines = [title, "      " + " ".join(f"b{j + 1:<2d}"
                                        for j in range(grid.shape[1]))]
    for i in range(grid.shape[0] - 1, -1, -1):
        cells = []
        for j in range(grid.shape[1]):
            shade = _SHADES[int((logs[i, j] - low) / span
                                * (len(_SHADES) - 1))]
            cells.append(f" {shade} ")
        lines.append(f"p{i + 1:<3d} " + " ".join(cells))
    return "\n".join(lines)


def pareto_front(points):
    """Non-dominated (latency, area) pairs, sorted by area."""
    front = []
    for point in sorted(points, key=lambda p: (p[2], p[1])):
        if not front or point[1] < front[-1][1]:
            front.append(point)
    return front


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="mobilenet_v2")
    parser.add_argument("--layer", type=int, default=12)
    parser.add_argument("--dataflow", default="dla",
                        choices=["dla", "eye", "shi"])
    args = parser.parse_args()

    # The spec names the search cell; its task() builds the same layers
    # and Table-I action space every session/search method sees.
    spec = SearchSpec(model=args.model, dataflow=args.dataflow)
    task = spec.task()
    layers = task.layers()
    layer = layers[args.layer % len(layers)]
    cost_model = CostModel()
    space = task.space()

    print(f"Layer {args.layer} of {args.model}: {layer}")
    latency = np.zeros((12, 12))
    energy = np.zeros((12, 12))
    points = []
    for i, pes in enumerate(space.pe_levels):
        for j, l1 in enumerate(space.buf_levels):
            report = cost_model.evaluate_layer(layer, args.dataflow, pes,
                                               l1)
            latency[i, j] = report.latency_cycles
            energy[i, j] = report.energy_nj
            points.append(((pes, l1), report.latency_cycles,
                           report.area_um2))

    print()
    print(heatmap(latency, "Latency contour (darker = slower):", space))
    print()
    print(heatmap(energy, "Energy contour (darker = hungrier):", space))
    print()
    print("Pareto frontier (area vs latency):")
    for (pes, l1), lat, area in pareto_front(points):
        print(f"  PE={pes:>3d} Buf={l1:>3d}B  "
              f"latency={lat:.3E}cy  area={area:.3E}um2")


if __name__ == "__main__":
    main()
