"""IoT deployment study: one model, every dataflow, tightening budgets.

The scenario from the paper's intro: an efficient mobile model (MnasNet)
must be pipelined onto a small edge accelerator (LP deployment).  The
script sweeps the three dataflow styles across the Cloud / IoT / IoTx
budget tiers, showing how tight budgets change which dataflow wins -- the
observation behind Table VI.

    python examples/iot_deployment.py [--epochs N]
"""

from __future__ import annotations

import argparse

import repro
from repro.core.reporting import format_table
from repro.costmodel import CostModel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=150)
    parser.add_argument("--layers", type=int, default=12)
    parser.add_argument("--model", default="mnasnet",
                        choices=["mnasnet", "mobilenet_v2", "resnet50"])
    args = parser.parse_args()

    # One shared estimator: layer evaluations are cached across the grid.
    cost_model = CostModel()

    rows = []
    best_per_platform = {}
    for platform in ("cloud", "iot", "iotx"):
        row = [platform]
        for dataflow in ("dla", "eye", "shi"):
            result = repro.explore(
                model=args.model, method="confuciux",
                objective="latency", dataflow=dataflow,
                constraint_kind="area", platform=platform,
                budget=args.epochs, finetune=args.epochs // 5, seed=0,
                layer_slice=args.layers, cost_model=cost_model)
            if not result.feasible:
                row.append("NAN")
            else:
                row.append(f"{result.best_cost:.2E}")
                key = best_per_platform.get(platform)
                if key is None or result.best_cost < key[1]:
                    best_per_platform[platform] = (dataflow,
                                                   result.best_cost)
        rows.append(row)

    print(format_table(
        ["platform", "NVDLA-style", "Eyeriss-style", "ShiDianNao-style"],
        rows,
        title=f"{args.model}: best latency (cycles) per dataflow and "
              f"budget tier ({args.layers} layers, {args.epochs} epochs)"))
    print()
    for platform, (dataflow, cost) in best_per_platform.items():
        print(f"  {platform:>6s}: {dataflow} wins at {cost:.2E} cycles")


if __name__ == "__main__":
    main()
