"""Dataflow-HW co-exploration (the MIX strategy, paper Section IV-D).

Lets the agent pick a dataflow style per layer alongside the PE/buffer
assignment, then visualizes which style each layer got -- early layers with
large activations tend toward Eyeriss/ShiDianNao styles, late channel-heavy
layers toward the NVDLA style.

    python examples/dataflow_coexploration.py [--epochs N]
"""

from __future__ import annotations

import argparse

import repro
from repro.core.joint import dataflow_assignment_table, style_histogram
from repro.core.reporting import ascii_bars, format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=200)
    parser.add_argument("--layers", type=int, default=20)
    parser.add_argument("--model", default="mobilenet_v2")
    args = parser.parse_args()

    # ``mix=True`` is the MIX strategy: the agent also picks a dataflow
    # style per layer.
    session_result = repro.explore(
        model=args.model, method="confuciux", objective="latency",
        constraint_kind="area", platform="iot", mix=True,
        budget=args.epochs, finetune=args.epochs // 5, seed=0,
        layer_slice=args.layers)

    if not session_result.feasible:
        print("No feasible assignment found; increase --epochs.")
        return
    layers = session_result.spec.task().layers()
    result = session_result.detail

    rows = dataflow_assignment_table(result, layers)
    print(format_table(
        ["#", "layer", "type", "style", "PEs", "L1 bytes"],
        [[r["layer"], r["name"], r["type"], r["style"], r["pes"],
          r["l1_bytes"]] for r in rows],
        title=f"Con'X-MIX assignment for {args.model} "
              f"(latency {result.best_cost:.2E} cycles)"))
    print()
    print("Style histogram:", style_histogram(rows))
    print()
    print("Per-layer styles:",
          " ".join(r["letter"] for r in rows))
    print()
    print("PEs per layer:")
    print(ascii_bars([r["pes"] for r in rows],
                     labels=[str(r["layer"]) for r in rows]))


if __name__ == "__main__":
    main()
