"""Quickstart: find an optimized HW resource assignment for MobileNet-V2.

One call to :func:`repro.explore` runs the full two-stage ConfuciuX
pipeline -- REINFORCE global search followed by local GA fine-tuning --
for an IoT-class area budget, then prints the per-layer assignment and the
constraint-utilization report.  Swap ``method="confuciux"`` for any name
in ``python -m repro methods`` to search with a different algorithm.

    python examples/quickstart.py [--epochs N] [--layers N]
"""

from __future__ import annotations

import argparse

import repro
from repro.core.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=200,
                        help="global-search epochs (paper: 5000)")
    parser.add_argument("--layers", type=int, default=16,
                        help="restrict to the first N layers (0 = all 52)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"Searching HW assignments for MobileNet-V2 "
          f"(first {args.layers or 'all'} layers)")
    print("Objective: minimize latency | Constraint: IoT area budget "
          "(10% of max)")

    result = repro.explore(
        model="mobilenet_v2",
        method="confuciux",
        objective="latency",
        dataflow="dla",            # NVDLA-style weight-stationary
        constraint_kind="area",
        platform="iot",
        budget=args.epochs,
        finetune=args.epochs // 4,
        seed=args.seed,
        layer_slice=args.layers or None,
    )

    if not result.feasible:
        print("No feasible assignment found; increase --epochs.")
        return

    # ``detail`` carries the full two-stage ConfuciuXResult.
    detail = result.detail
    impr1, impr2 = detail.improvement_fractions()
    print()
    print(f"First valid latency : {detail.initial_valid_cost:.3E} cycles")
    print(f"After global search : {detail.global_cost:.3E} cycles "
          f"({100 * impr1:.1f}% better)")
    print(f"After fine-tuning   : {detail.best_cost:.3E} cycles "
          f"(another {100 * impr2:.1f}%)")
    print(f"Constraint report   : {detail.utilization()}")
    print()

    layers = result.spec.task().layers()
    rows = [
        [i + 1, layer.name, layer.layer_type.name, pes, l1]
        for i, (layer, (pes, l1)) in enumerate(
            zip(layers, result.best_assignments))
    ]
    print(format_table(
        ["#", "layer", "type", "PEs", "L1 bytes"], rows,
        title="Optimized per-layer assignment"))


if __name__ == "__main__":
    main()
