"""Quickstart: find an optimized HW resource assignment for MobileNet-V2.

Runs the full two-stage ConfuciuX pipeline -- REINFORCE global search
followed by local GA fine-tuning -- for an IoT-class area budget, then
prints the per-layer assignment and the constraint-utilization report.

    python examples/quickstart.py [--epochs N] [--layers N]
"""

from __future__ import annotations

import argparse

from repro import ConfuciuX, get_model
from repro.core.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=200,
                        help="global-search epochs (paper: 5000)")
    parser.add_argument("--layers", type=int, default=16,
                        help="restrict to the first N layers (0 = all 52)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    layers = get_model("mobilenet_v2")
    if args.layers:
        layers = layers[: args.layers]

    print(f"Searching HW assignments for {len(layers)} MobileNet-V2 layers")
    print("Objective: minimize latency | Constraint: IoT area budget "
          "(10% of max)")

    pipeline = ConfuciuX(
        layers,
        objective="latency",
        dataflow="dla",            # NVDLA-style weight-stationary
        constraint_kind="area",
        platform="iot",
        seed=args.seed,
    )
    result = pipeline.run(global_epochs=args.epochs,
                          finetune_generations=args.epochs // 4)

    if result.best_cost is None:
        print("No feasible assignment found; increase --epochs.")
        return

    impr1, impr2 = result.improvement_fractions()
    print()
    print(f"First valid latency : {result.initial_valid_cost:.3E} cycles")
    print(f"After global search : {result.global_cost:.3E} cycles "
          f"({100 * impr1:.1f}% better)")
    print(f"After fine-tuning   : {result.best_cost:.3E} cycles "
          f"(another {100 * impr2:.1f}%)")
    print(f"Constraint report   : {result.utilization()}")
    print()

    rows = [
        [i + 1, layer.name, layer.layer_type.name, pes, l1]
        for i, (layer, (pes, l1)) in enumerate(
            zip(layers, result.best_assignments))
    ]
    print(format_table(
        ["#", "layer", "type", "PEs", "L1 bytes"], rows,
        title="Optimized per-layer assignment"))


if __name__ == "__main__":
    main()
