"""Multi-objective search: the latency/energy Pareto surface of one chip.

The paper's Cloud/IoT/IoTx grid optimizes one scalar objective per run;
real deployment decisions trade latency, energy, and area at once.  This
example runs the NSGA-II ``pareto-ga`` method on a latency/energy
trade-off under an IoT area budget, prints the non-dominated front as an
ASCII scatter, and contrasts it with two scalar anchor runs (pure
latency, pure energy) plus a weighted blend -- all through the same
objective subsystem::

    python examples/pareto_tradeoff.py [--budget N] [--layers N]

Try a three-axis front with ``--objective multi:latency,energy,area`` or
a soft-area variant via a spec dict in :func:`repro.explore`.
"""

from __future__ import annotations

import argparse

import repro
from repro.core.reporting import format_table


def ascii_scatter(points, width: int = 56, height: int = 14) -> str:
    """A crude (latency, energy) scatter: '*' = non-dominated point."""
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = 0 if x_hi == x_lo else round(
            (x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = 0 if y_hi == y_lo else round(
            (y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines = ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" latency {x_lo:.2E} .. {x_hi:.2E}  (energy "
                 f"{y_lo:.2E} .. {y_hi:.2E}, up = more)")
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=600,
                        help="design-point evaluations for each search")
    parser.add_argument("--layers", type=int, default=8,
                        help="restrict to the first N layers (0 = all)")
    parser.add_argument("--objective", default="multi:latency,energy",
                        help="multi: spec for the trade-off axes")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    common = dict(model="mobilenet_v2", constraint_kind="area",
                  platform="iot", budget=args.budget, seed=args.seed,
                  layer_slice=args.layers or None)

    print(f"Pareto search: {args.objective} under an IoT area budget")
    result = repro.explore(method="pareto-ga", objective=args.objective,
                           **common)
    front = result.pareto_front
    if not front:
        print("No feasible design point found; increase --budget.")
        return
    names = result.result.extra["objective_names"]

    print()
    print(result.summary())
    rows = [[i + 1] + [f"{point['objectives'][name]:.3E}"
                       for name in names]
            + [" ".join(f"{a[0]}/{a[1]}"
                        for a in point["assignments"][:4]) + " ..."]
            for i, point in enumerate(front)]
    print(format_table(
        ["#"] + names + ["PEs/L1 (first layers)"], rows,
        title=f"Non-dominated front ({len(front)} points)"))

    if len(names) == 2 and len(front) > 1:
        print()
        print(ascii_scatter([
            (point["objectives"][names[0]], point["objectives"][names[1]])
            for point in front]))

    # Scalar anchors: the front's extremes should bracket what dedicated
    # single-objective runs find, and a weighted blend lands in between.
    print()
    anchors = []
    for objective in (names[0], names[1] if len(names) > 1 else names[0],
                      f"weighted:{names[0]}=0.5,{names[-1]}=0.5"):
        anchor = repro.explore(method="ga", objective=objective, **common)
        anchors.append([repro.objectives.objective_label(objective),
                        anchor.result.format_cost()])
    print(format_table(["scalar anchor run", "best cost"], anchors,
                       title="Scalar runs through the same objective "
                             "subsystem"))


if __name__ == "__main__":
    main()
