"""Search-method shoot-out on one task (a Table IV / Table V row).

Runs every optimizer and RL algorithm in the repository on the same
(model, dataflow, constraint) cell with the same evaluation budget and
reports converged quality, sample efficiency, wall time, and memory.

    python examples/search_method_comparison.py [--epochs N] \
        [--platform iot] [--methods reinforce,ppo2,ga,...]
"""

from __future__ import annotations

import argparse

from repro.core.reporting import format_table
from repro.experiments import TaskSpec, compare_methods

DEFAULT_METHODS = ["grid", "random", "sa", "ga", "bayesian",
                   "a2c", "acktr", "ppo2", "ddpg", "sac", "td3",
                   "reinforce"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=120)
    parser.add_argument("--layers", type=int, default=12)
    parser.add_argument("--model", default="mobilenet_v2")
    parser.add_argument("--platform", default="iot",
                        choices=["unlimited", "cloud", "iot", "iotx"])
    parser.add_argument("--objective", default="latency",
                        choices=["latency", "energy", "edp"])
    parser.add_argument("--methods", default=",".join(DEFAULT_METHODS))
    args = parser.parse_args()

    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    task = TaskSpec(model=args.model, dataflow="dla",
                    objective=args.objective, platform=args.platform,
                    layer_slice=args.layers)
    print(f"Task: {task.label()} | Eps={args.epochs} per method")
    results = compare_methods(task, methods, args.epochs, seed=0)

    best_feasible = min((r.best_cost for r in results.values()
                         if r.best_cost is not None), default=None)
    rows = []
    for name in methods:
        result = results[name]
        reach = (result.epochs_to_reach(best_feasible * 1.1)
                 if best_feasible else None)
        rows.append([
            name,
            result.format_cost(),
            str(reach) if reach is not None else "-",
            f"{result.evaluations}",
            f"{result.wall_time_s:.2f}s",
            f"{result.memory_bytes / 1e6:.2f}MB",
        ])
    print(format_table(
        ["method", f"best {args.objective}", "epochs to within 10% of best",
         "evaluations", "wall time", "memory"],
        rows, title="Search-method comparison"))


if __name__ == "__main__":
    main()
