"""Search-method shoot-out on one task (a Table IV / Table V row).

Runs every method in the unified registry -- classic optimizers, RL
algorithms, the stage-2 GA, and the full two-stage pipeline -- on the same
(model, dataflow, constraint) cell with the same evaluation budget and
reports converged quality, sample efficiency, wall time, and memory.
Register your own method (``repro.register_method``) and it appears here
automatically.

    python examples/search_method_comparison.py [--epochs N] \
        [--platform iot] [--methods reinforce,ppo2,ga,...]
"""

from __future__ import annotations

import argparse

import repro
from repro.core.reporting import format_table
from repro.costmodel import CostModel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=120)
    parser.add_argument("--layers", type=int, default=12)
    parser.add_argument("--model", default="mobilenet_v2")
    parser.add_argument("--platform", default="iot",
                        choices=["unlimited", "cloud", "iot", "iotx"])
    parser.add_argument("--objective", default="latency",
                        choices=["latency", "energy", "edp"])
    parser.add_argument("--methods", default="",
                        help="comma-separated names; default: the whole "
                             "registry")
    args = parser.parse_args()

    methods = ([m.strip() for m in args.methods.split(",") if m.strip()]
               or repro.method_names())
    # One shared estimator so cached layer evaluations are reused.
    cost_model = CostModel()

    print(f"Task: {args.model} {args.objective} area:{args.platform} | "
          f"Eps={args.epochs} per method")
    results = {}
    for method in methods:
        results[method] = repro.explore(
            model=args.model, method=method, objective=args.objective,
            constraint_kind="area", platform=args.platform,
            budget=args.epochs, seed=0, layer_slice=args.layers,
            cost_model=cost_model)

    best_feasible = min((r.best_cost for r in results.values()
                         if r.best_cost is not None), default=None)
    rows = []
    for name in methods:
        outcome = results[name].result
        reach = (outcome.epochs_to_reach(best_feasible * 1.1)
                 if best_feasible else None)
        rows.append([
            name,
            repro.get_method(name).kind,
            outcome.format_cost(),
            str(reach) if reach is not None else "-",
            f"{outcome.evaluations}",
            f"{outcome.wall_time_s:.2f}s",
            f"{outcome.memory_bytes / 1e6:.2f}MB",
        ])
    print(format_table(
        ["method", "kind", f"best {args.objective}",
         "epochs to within 10% of best", "evaluations", "wall time",
         "memory"],
        rows, title="Search-method comparison"))


if __name__ == "__main__":
    main()
